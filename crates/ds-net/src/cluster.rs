//! The simulated cluster: nodes, links, processes, and message routing,
//! driven by the `ds-sim` kernel.
//!
//! [`ClusterSim`] is the facade used by tests, examples, and the experiment
//! harness: build a topology, register services, inject faults, run, and
//! inspect the trace and counters.

use std::collections::{BTreeMap, HashMap};

use ds_sim::prelude::*;
use ds_sim::sim::Scheduler;

use crate::endpoint::{Endpoint, NodeId, ProcessId, ServiceName};
use crate::error::NetError;
use crate::link::{Link, RouteOutcome};
use crate::message::{Envelope, MsgBody};
use crate::node::{Node, NodeConfig, NodeStatus};
use crate::process::{Process, ProcessEnv, ProcessFactory, TimerHandle};

/// Latency charged for same-node (IPC) messages — COM LPC was fast and
/// reliable relative to the network.
pub const IPC_LATENCY: SimDuration = SimDuration::from_micros(50);

/// Delay between a service being launched and its `on_start` running
/// (process creation + DLL load time).
pub const PROCESS_SPAWN_DELAY: SimDuration = SimDuration::from_millis(20);

/// Message-flow counters, updated on every routing decision.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Messages offered to the network.
    pub sent: u64,
    /// Messages handed to a running process.
    pub delivered: u64,
    /// Dropped by random path loss.
    pub dropped_loss: u64,
    /// Dropped because no healthy path existed.
    pub dropped_no_path: u64,
    /// Dropped because the destination node was down at delivery time.
    pub dropped_node_down: u64,
    /// Dropped because no process was registered for the destination
    /// service at delivery time.
    pub dropped_no_service: u64,
}

impl NetCounters {
    /// Total messages dropped for any reason.
    pub fn dropped(&self) -> u64 {
        self.dropped_loss + self.dropped_no_path + self.dropped_node_down + self.dropped_no_service
    }
}

struct ProcSlot {
    pid: ProcessId,
    endpoint: Endpoint,
    actor: Option<Box<dyn Process>>,
    rng: SimRng,
    /// `false` until `on_start` has run — a service that has not finished
    /// starting is not listening, so deliveries to it are dropped.
    started: bool,
}

/// The world type simulated by [`ClusterSim`].
pub struct Cluster {
    nodes: BTreeMap<NodeId, Node>,
    links: HashMap<(NodeId, NodeId), Link>,
    procs: HashMap<ProcessId, ProcSlot>,
    services: HashMap<(NodeId, ServiceName), ProcessId>,
    specs: HashMap<(NodeId, ServiceName), ProcessFactory>,
    next_pid: u64,
    next_node: u16,
    /// When true, every send/delivery is traced (verbose; off by default).
    pub trace_net: bool,
    counters: NetCounters,
}

impl Cluster {
    fn new() -> Self {
        Cluster {
            nodes: BTreeMap::new(),
            links: HashMap::new(),
            procs: HashMap::new(),
            services: HashMap::new(),
            specs: HashMap::new(),
            next_pid: 0,
            next_node: 0,
            trace_net: false,
            counters: NetCounters::default(),
        }
    }

    fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// The node with `id`.
    ///
    /// # Panics
    ///
    /// Panics if no such node exists.
    pub fn node(&self, id: NodeId) -> &Node {
        self.nodes.get(&id).unwrap_or_else(|| panic!("unknown node {id}"))
    }

    /// Exclusive access to the node with `id`.
    ///
    /// # Panics
    ///
    /// Panics if no such node exists.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.nodes.get_mut(&id).unwrap_or_else(|| panic!("unknown node {id}"))
    }

    /// The node with `id`, as a typed error instead of a panic — the form
    /// the fault-injection and routing hot paths use, since an explored
    /// schedule or a mis-aimed fault can legitimately reference a node the
    /// cluster does not have.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownNode`] if no such node exists.
    pub fn try_node(&self, id: NodeId) -> Result<&Node, NetError> {
        self.nodes.get(&id).ok_or(NetError::UnknownNode(id))
    }

    /// Exclusive [`Cluster::try_node`].
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownNode`] if no such node exists.
    pub fn try_node_mut(&mut self, id: NodeId) -> Result<&mut Node, NetError> {
        self.nodes.get_mut(&id).ok_or(NetError::UnknownNode(id))
    }

    /// All node ids, ascending.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// The link between `a` and `b`, if connected.
    pub fn link(&self, a: NodeId, b: NodeId) -> Option<&Link> {
        self.links.get(&Self::link_key(a, b))
    }

    /// Exclusive access to the link between `a` and `b`.
    pub fn link_mut(&mut self, a: NodeId, b: NodeId) -> Option<&mut Link> {
        self.links.get_mut(&Self::link_key(a, b))
    }

    /// Message-flow counters.
    pub fn counters(&self) -> NetCounters {
        self.counters
    }

    /// `true` if a process is currently registered for `service` on `node`.
    pub fn is_service_running(&self, node: NodeId, service: &ServiceName) -> bool {
        self.services.contains_key(&(node, service.clone()))
    }

    /// The pid of the running instance of `service` on `node`, if any.
    pub fn service_pid(&self, node: NodeId, service: &ServiceName) -> Option<ProcessId> {
        self.services.get(&(node, service.clone())).copied()
    }

    // ---- internal operations, called with the scheduler in hand ----------

    fn route(&mut self, sched: &mut Scheduler<'_, Cluster>, envelope: Envelope) {
        self.counters.sent += 1;
        let to = envelope.to.clone();
        if self.trace_net {
            sched.record(
                TraceCategory::Net,
                format!("send {} -> {} ({} B)", envelope.from, to, envelope.size_bytes),
            );
        }
        let src_node = envelope.from.node;
        let delay = if src_node == to.node {
            // Same-node IPC: reliable, fast, independent of node links.
            Some(IPC_LATENCY)
        } else {
            let Some(link) = self.links.get(&Self::link_key(src_node, to.node)) else {
                self.counters.dropped_no_path += 1;
                if self.trace_net {
                    sched.record(TraceCategory::Net, format!("no route {} -> {}", src_node, to));
                }
                return;
            };
            match link.route(envelope.size_bytes, sched.rng()) {
                RouteOutcome::Deliver(d) => Some(d),
                RouteOutcome::Lost => {
                    self.counters.dropped_loss += 1;
                    None
                }
                RouteOutcome::NoPath => {
                    self.counters.dropped_no_path += 1;
                    None
                }
            }
        };
        // A crashed sender cannot transmit: route() is only reachable from a
        // live process handler, so the source is up by construction.
        let Some(delay) = delay else { return };
        let mut envelope = envelope;
        envelope.clock = sched.current_clock();
        sched.schedule_scoped(
            delay,
            || format!("net:{to}"),
            move |cluster: &mut Cluster, sched| {
                cluster.deliver(sched, envelope);
            },
        );
    }

    fn deliver(&mut self, sched: &mut Scheduler<'_, Cluster>, envelope: Envelope) {
        let to = envelope.to.clone();
        if !self.nodes.get(&to.node).map(|n| n.status.is_up()).unwrap_or(false) {
            self.counters.dropped_node_down += 1;
            if self.trace_net {
                sched.record(TraceCategory::Net, format!("drop (node down): {}", to));
            }
            return;
        }
        let Some(&pid) = self.services.get(&(to.node, to.service.clone())) else {
            self.counters.dropped_no_service += 1;
            if self.trace_net {
                sched.record(TraceCategory::Net, format!("drop (no service): {}", to));
            }
            return;
        };
        if !self.procs.get(&pid).map(|s| s.started).unwrap_or(false) {
            self.counters.dropped_no_service += 1;
            if self.trace_net {
                sched.record(TraceCategory::Net, format!("drop (still starting): {}", to));
            }
            return;
        }
        self.counters.delivered += 1;
        self.dispatch(sched, pid, Dispatch::Message(envelope), None);
    }

    fn dispatch(
        &mut self,
        sched: &mut Scheduler<'_, Cluster>,
        pid: ProcessId,
        what: Dispatch,
        inherited: Option<VectorClock>,
    ) {
        let Some(slot) = self.procs.get_mut(&pid) else { return };
        let Some(mut actor) = slot.actor.take() else {
            // Re-entrant dispatch to a process already running a handler is
            // impossible in a sequential DES; treat defensively as a drop.
            return;
        };
        let mut rng = slot.rng.clone();
        let endpoint = slot.endpoint.clone();
        if sched.causality_enabled() {
            // Clock rules: the handling incarnation ticks its own component;
            // a delivered message joins the sender's stamp, and a spawn
            // joins the clock of whoever requested the (re)start.
            sched.begin_actor(&endpoint.to_string());
            if let Some(clock) = &inherited {
                sched.join_clock(clock);
            }
            if let Dispatch::Message(envelope) = &what {
                if let Some(clock) = &envelope.clock {
                    sched.join_clock(clock);
                }
            }
        }
        let mut env =
            ProcCtx { cluster: self, sched, pid, endpoint, rng: &mut rng, exit_requested: false };
        match what {
            Dispatch::Start => actor.on_start(&mut env),
            Dispatch::Message(envelope) => actor.on_message(envelope, &mut env),
            Dispatch::Timer(token) => actor.on_timer(token, &mut env),
        }
        let exited = env.exit_requested;
        // Put the actor back only if this incarnation still exists (the
        // handler may have killed its own service or crashed its own node).
        if let Some(slot) = self.procs.get_mut(&pid) {
            if exited {
                let key = (slot.endpoint.node, slot.endpoint.service.clone());
                self.services.remove(&key);
                self.procs.remove(&pid);
            } else {
                slot.actor = Some(actor);
                slot.rng = rng;
            }
        }
    }

    fn start_service(
        &mut self,
        sched: &mut Scheduler<'_, Cluster>,
        node: NodeId,
        service: ServiceName,
    ) {
        if !self.nodes.get(&node).map(|n| n.status.is_up()).unwrap_or(false) {
            return;
        }
        if self.services.contains_key(&(node, service.clone())) {
            return; // already running
        }
        let Some(factory) = self.specs.get(&(node, service.clone())) else {
            sched.record(
                TraceCategory::Other,
                format!("cannot start {node}/{service}: no spec registered"),
            );
            return;
        };
        let actor = factory();
        let pid = ProcessId(self.next_pid);
        self.next_pid += 1;
        let endpoint = Endpoint::new(node, service.clone());
        let rng = sched.rng().fork();
        self.procs.insert(pid, ProcSlot { pid, endpoint, actor: Some(actor), rng, started: false });
        self.services.insert((node, service.clone()), pid);
        sched.record(TraceCategory::Other, format!("start {node}/{service} as {pid}"));
        // Capture the requester's clock so the spawned incarnation's
        // `on_start` is happens-after whoever asked for the (re)start.
        let parent_clock = sched.current_clock();
        sched.schedule_scoped(
            PROCESS_SPAWN_DELAY,
            || format!("spawn:{node}/{service}"),
            move |cluster: &mut Cluster, sched| {
                if let Some(slot) = cluster.procs.get_mut(&pid) {
                    slot.started = true;
                    cluster.dispatch(sched, pid, Dispatch::Start, parent_clock);
                }
            },
        );
    }

    fn kill_service(
        &mut self,
        sched: &mut Scheduler<'_, Cluster>,
        node: NodeId,
        service: &ServiceName,
    ) {
        if let Some(pid) = self.services.remove(&(node, service.clone())) {
            self.procs.remove(&pid);
            sched.record(TraceCategory::Fault, format!("kill {node}/{service} ({pid})"));
        }
    }

    fn kill_all_on_node(&mut self, node: NodeId) {
        let dead: Vec<ProcessId> =
            self.procs.values().filter(|s| s.endpoint.node == node).map(|s| s.pid).collect();
        for pid in dead {
            if let Some(slot) = self.procs.remove(&pid) {
                self.services.remove(&(node, slot.endpoint.service));
            }
        }
    }

    /// Brings a node up (initial boot, repair, or reboot completion) and
    /// launches its auto-start services at randomized offsets, modelling the
    /// NT startup non-determinism of paper Section 3.2.
    fn boot_node(&mut self, sched: &mut Scheduler<'_, Cluster>, node_id: NodeId) {
        let (services, max_delay) = {
            let node = match self.try_node_mut(node_id) {
                Ok(node) => node,
                Err(err) => {
                    sched.record(TraceCategory::Fault, format!("boot failed: {err}"));
                    return;
                }
            };
            node.status = NodeStatus::Up;
            node.boot_count += 1;
            (node.autostart.clone(), node.config.max_start_delay)
        };
        sched.record(TraceCategory::Fault, format!("{node_id} up (boot)"));
        for service in services {
            let delay = if max_delay.is_zero() {
                SimDuration::ZERO
            } else {
                sched.rng().duration_between(SimDuration::ZERO, max_delay)
            };
            let label = format!("boot:{node_id}/{service}");
            sched.schedule_scoped(
                delay,
                || label,
                move |cluster: &mut Cluster, sched| {
                    cluster.start_service(sched, node_id, service.clone());
                },
            );
        }
    }
}

enum Dispatch {
    Start,
    Message(Envelope),
    Timer(u64),
}

/// [`ProcessEnv`] implementation backing simulated processes.
struct ProcCtx<'a, 'b> {
    cluster: &'a mut Cluster,
    sched: &'a mut Scheduler<'b, Cluster>,
    pid: ProcessId,
    endpoint: Endpoint,
    rng: &'a mut SimRng,
    exit_requested: bool,
}

impl ProcessEnv for ProcCtx<'_, '_> {
    fn now(&self) -> SimTime {
        self.sched.now()
    }

    fn self_endpoint(&self) -> Endpoint {
        self.endpoint.clone()
    }

    fn send(&mut self, to: Endpoint, body: MsgBody, size_bytes: u64) {
        let envelope = Envelope::sized(self.endpoint.clone(), to, body, size_bytes);
        self.cluster.route(self.sched, envelope);
    }

    fn set_timer(&mut self, after: SimDuration, token: u64) -> TimerHandle {
        let pid = self.pid;
        let endpoint = &self.endpoint;
        let id = self.sched.schedule_scoped(
            after,
            || format!("timer:{endpoint}"),
            move |cluster: &mut Cluster, sched| {
                // The incarnation check: a timer armed by a dead process must
                // never fire into its successor.
                if cluster.procs.contains_key(&pid) {
                    // Timers are same-actor: program order already covers
                    // the arm→fire edge, so no clock rides along.
                    cluster.dispatch(sched, pid, Dispatch::Timer(token), None);
                }
            },
        );
        TimerHandle(id.as_u64())
    }

    fn cancel_timer(&mut self, handle: TimerHandle) {
        self.sched.cancel(EventId::from_u64(handle.0));
    }

    fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    fn record(&mut self, category: TraceCategory, message: String) {
        self.sched.record(category, message);
    }

    fn kill_service(&mut self, node: NodeId, service: &ServiceName) {
        if node == self.endpoint.node && *service == self.endpoint.service {
            self.exit_requested = true;
            return;
        }
        self.cluster.kill_service(self.sched, node, service);
    }

    fn restart_service(&mut self, node: NodeId, service: &ServiceName) {
        self.cluster.start_service(self.sched, node, service.clone());
    }

    fn exit(&mut self) {
        self.exit_requested = true;
    }

    fn observe_access(&mut self, object: &str, kind: AccessKind, detail: &str) {
        self.sched.observe_access(object, kind, detail);
    }

    fn observe_lock(&mut self, lock: &str, acquired: bool) {
        self.sched.observe_lock(lock, acquired);
    }

    fn observe_api(&mut self, call: &str, detail: &str) {
        self.sched.observe_api(call, detail);
    }
}

/// A buildable, runnable simulated cluster.
///
/// # Examples
///
/// ```
/// use ds_net::prelude::*;
///
/// let mut cluster = ClusterSim::new(42);
/// let a = cluster.add_node(NodeConfig::default());
/// let b = cluster.add_node(NodeConfig::default());
/// cluster.connect(a, b, Link::dual());
/// assert!(cluster.cluster().link(a, b).is_some());
/// ```
pub struct ClusterSim {
    sim: Sim<Cluster>,
}

impl ClusterSim {
    /// Creates an empty cluster with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        ClusterSim { sim: Sim::new(Cluster::new(), seed) }
    }

    /// Adds a node; returns its id.
    pub fn add_node(&mut self, config: NodeConfig) -> NodeId {
        let cluster = self.sim.world_mut();
        let id = NodeId(cluster.next_node);
        cluster.next_node += 1;
        cluster.nodes.insert(id, Node::new(id, config));
        id
    }

    /// Connects two nodes with a link (replacing any existing link).
    ///
    /// # Panics
    ///
    /// Panics if either node does not exist or `a == b`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, link: Link) {
        assert_ne!(a, b, "cannot link a node to itself");
        let cluster = self.sim.world_mut();
        assert!(cluster.nodes.contains_key(&a), "unknown node {a}");
        assert!(cluster.nodes.contains_key(&b), "unknown node {b}");
        cluster.links.insert(Cluster::link_key(a, b), link);
    }

    /// Registers a service spec on a node. If `autostart`, the service is
    /// launched at every boot of the node (including [`ClusterSim::start`]).
    pub fn register_service(
        &mut self,
        node: NodeId,
        service: impl Into<ServiceName>,
        factory: ProcessFactory,
        autostart: bool,
    ) {
        let service = service.into();
        let cluster = self.sim.world_mut();
        assert!(cluster.nodes.contains_key(&node), "unknown node {node}");
        cluster.specs.insert((node, service.clone()), factory);
        if autostart {
            cluster.node_mut(node).autostart.push(service);
        }
    }

    /// Boots every node at time zero: each auto-start service comes up at an
    /// independent random offset (the paper's NT startup non-determinism).
    pub fn start(&mut self) {
        let ids = self.sim.world().node_ids();
        for id in ids {
            self.sim.schedule_at_scoped(
                SimTime::ZERO,
                || format!("boot:{id}"),
                move |cluster: &mut Cluster, sched| {
                    // boot_node bumps boot_count; initial construction already
                    // counted boot 1, so compensate.
                    cluster.node_mut(id).boot_count -= 1;
                    cluster.boot_node(sched, id);
                },
            );
        }
    }

    /// Launches a specific service at an absolute time (for staggered-start
    /// experiments).
    pub fn start_service_at(&mut self, at: SimTime, node: NodeId, service: impl Into<ServiceName>) {
        let service = service.into();
        let label = format!("spawn:{node}/{service}");
        self.sim.schedule_at_scoped(
            at,
            || label,
            move |cluster: &mut Cluster, sched| {
                cluster.start_service(sched, node, service.clone());
            },
        );
    }

    /// Posts a message into the cluster from a synthetic external source
    /// (unit-test convenience; real drivers are processes).
    pub fn post<T: std::any::Any + Send>(&mut self, at: SimTime, to: Endpoint, body: T) {
        let from = Endpoint::new(to.node, "__external");
        let envelope = Envelope::new(from, to, body);
        self.sim.schedule_at(at, move |cluster: &mut Cluster, sched| {
            cluster.deliver(sched, envelope);
        });
    }

    /// Runs until `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        self.sim.run_until(horizon)
    }

    /// Runs until the event queue drains (bounded by `max_events`).
    ///
    /// # Panics
    ///
    /// Panics if `max_events` is exceeded.
    pub fn run_to_completion(&mut self, max_events: u64) -> SimTime {
        self.sim.run_to_completion(max_events)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The cluster world.
    pub fn cluster(&self) -> &Cluster {
        self.sim.world()
    }

    /// Exclusive access to the cluster world (setup/inspection only; do not
    /// mutate topology mid-run except through fault injection).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        self.sim.world_mut()
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        self.sim.trace()
    }

    /// Exclusive access to the trace (e.g. to enable echo).
    pub fn trace_mut(&mut self) -> &mut Trace {
        self.sim.trace_mut()
    }

    /// The underlying simulation (escape hatch for the fault layer).
    pub fn sim_mut(&mut self) -> &mut Sim<Cluster> {
        &mut self.sim
    }

    /// Sets the same-timestamp tie-break policy (see
    /// [`ds_sim::schedule::SchedulePolicy`]). Install before
    /// [`ClusterSim::start`] so boot-time ties are already choice points.
    pub fn set_schedule_policy(&mut self, policy: SchedulePolicy) {
        self.sim.set_schedule_policy(policy);
    }

    /// Choice points recorded by an exploring schedule policy.
    pub fn choice_points(&self) -> &[ChoicePoint] {
        self.sim.choice_points()
    }

    /// The tie-break index taken at each choice point so far — pair with
    /// the seed for a replayable [`ds_sim::schedule::Schedule`].
    pub fn choices_taken(&self) -> Vec<u32> {
        self.sim.choices_taken()
    }

    /// Turns causality recording on or off (off by default). Install before
    /// [`ClusterSim::start`] so boot-time spawns already carry clocks.
    pub fn set_causality_recording(&mut self, on: bool) {
        self.sim.set_causality_recording(on);
    }

    /// The causality log recorded so far.
    pub fn causality_log(&self) -> &CausalityLog {
        self.sim.causality().log()
    }

    /// Takes the causality log, leaving an empty one.
    pub fn take_causality_log(&mut self) -> CausalityLog {
        self.sim.causality_mut().take_log()
    }

    /// Consumes the wrapper, returning world and trace.
    pub fn into_parts(self) -> (Cluster, Trace) {
        self.sim.into_parts()
    }
}

// Crate-internal hooks used by the fault layer.
impl Cluster {
    /// Surfaces a fault-layer error through the trace instead of panicking:
    /// a fault plan aimed at a node the cluster never had is a scenario bug
    /// the invariant engine should get to see, not an abort.
    fn fault_error(sched: &mut Scheduler<'_, Cluster>, what: &str, err: &NetError) {
        sched.record(TraceCategory::Fault, format!("fault {what} failed: {err}"));
    }

    pub(crate) fn fault_crash_node(&mut self, sched: &mut Scheduler<'_, Cluster>, node: NodeId) {
        match self.try_node_mut(node) {
            Ok(n) => n.status = NodeStatus::Crashed,
            Err(err) => return Self::fault_error(sched, "crash", &err),
        }
        self.kill_all_on_node(node);
        sched.record(TraceCategory::Fault, format!("{node} crashed (hard)"));
    }

    pub(crate) fn fault_repair_node(&mut self, sched: &mut Scheduler<'_, Cluster>, node: NodeId) {
        match self.try_node(node) {
            Ok(n) if n.status == NodeStatus::Crashed => self.boot_node(sched, node),
            Ok(_) => {}
            Err(err) => Self::fault_error(sched, "repair", &err),
        }
    }

    pub(crate) fn fault_reboot_node(&mut self, sched: &mut Scheduler<'_, Cluster>, node: NodeId) {
        let reboot_duration = match self.try_node(node) {
            Ok(n) => n.config.reboot_duration,
            Err(err) => return Self::fault_error(sched, "reboot", &err),
        };
        let until = sched.now() + reboot_duration;
        self.node_mut(node).status = NodeStatus::Rebooting { until };
        self.kill_all_on_node(node);
        sched.record(TraceCategory::Fault, format!("{node} blue screen; rebooting until {until}"));
        sched.schedule_at(until, move |cluster: &mut Cluster, sched| {
            if matches!(cluster.node(node).status, NodeStatus::Rebooting { .. }) {
                cluster.boot_node(sched, node);
            }
        });
    }

    pub(crate) fn fault_kill_service(
        &mut self,
        sched: &mut Scheduler<'_, Cluster>,
        node: NodeId,
        service: &ServiceName,
    ) {
        self.kill_service(sched, node, service);
    }

    pub(crate) fn fault_start_service(
        &mut self,
        sched: &mut Scheduler<'_, Cluster>,
        node: NodeId,
        service: ServiceName,
    ) {
        self.start_service(sched, node, service);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ProcessEnvExt;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    /// Echoes every u32 it receives back to the sender, incremented.
    struct Echo;
    impl Process for Echo {
        fn on_message(&mut self, envelope: Envelope, env: &mut dyn ProcessEnv) {
            let from = envelope.from.clone();
            if let Ok(n) = envelope.body.downcast::<u32>() {
                env.send_msg(from, n + 1);
            }
        }
    }

    /// Sends `0` to a peer on start and counts replies.
    struct Pinger {
        peer: Endpoint,
        replies: Arc<AtomicU32>,
    }
    impl Process for Pinger {
        fn on_start(&mut self, env: &mut dyn ProcessEnv) {
            env.send_msg(self.peer.clone(), 0u32);
        }
        fn on_message(&mut self, envelope: Envelope, env: &mut dyn ProcessEnv) {
            if let Ok(n) = envelope.body.downcast::<u32>() {
                self.replies.fetch_add(1, Ordering::SeqCst);
                if n < 10 {
                    env.send_msg(envelope.from, n + 1);
                }
            }
        }
    }

    fn two_node_cluster(seed: u64) -> (ClusterSim, NodeId, NodeId) {
        let mut cs = ClusterSim::new(seed);
        let a = cs.add_node(NodeConfig::default());
        let b = cs.add_node(NodeConfig::default());
        cs.connect(a, b, Link::dual());
        (cs, a, b)
    }

    #[test]
    fn ping_pong_round_trips() {
        let (mut cs, a, b) = two_node_cluster(6);
        let replies = Arc::new(AtomicU32::new(0));
        let r = replies.clone();
        cs.register_service(b, "echo", Box::new(|| Box::new(Echo)), true);
        cs.register_service(
            a,
            "pinger",
            Box::new(move || {
                Box::new(Pinger { peer: Endpoint::new(b, "echo"), replies: r.clone() })
            }),
            true,
        );
        cs.start();
        cs.run_until(SimTime::from_secs(5));
        // 0->1->2..: pinger sees odd numbers 1,3,5,7,9,11 → 6 replies.
        assert_eq!(replies.load(Ordering::SeqCst), 6);
        let c = cs.cluster().counters();
        assert_eq!(c.dropped(), 0);
        assert!(c.delivered >= 12);
    }

    #[test]
    fn messages_to_downed_node_are_dropped() {
        let (mut cs, a, b) = two_node_cluster(2);
        cs.register_service(b, "echo", Box::new(|| Box::new(Echo)), true);
        cs.register_service(
            a,
            "pinger",
            Box::new(move || {
                Box::new(Pinger {
                    peer: Endpoint::new(b, "echo"),
                    replies: Arc::new(AtomicU32::new(0)),
                })
            }),
            true,
        );
        cs.start();
        // Crash b before anything can run.
        crate::fault::inject(&mut cs, SimTime::from_micros(1), crate::fault::Fault::CrashNode(b));
        cs.run_until(SimTime::from_secs(2));
        let c = cs.cluster().counters();
        assert_eq!(c.delivered, 0);
        assert!(c.dropped_node_down + c.dropped_no_service >= 1);
    }

    #[test]
    fn service_restart_gets_fresh_incarnation() {
        let (mut cs, _a, b) = two_node_cluster(3);
        cs.register_service(b, "echo", Box::new(|| Box::new(Echo)), true);
        cs.start();
        cs.run_until(SimTime::from_secs(1));
        let pid1 = cs.cluster().service_pid(b, &"echo".into()).unwrap();
        crate::fault::inject(
            &mut cs,
            SimTime::from_secs(1),
            crate::fault::Fault::KillService(b, "echo".into()),
        );
        crate::fault::inject(
            &mut cs,
            SimTime::from_secs(2),
            crate::fault::Fault::StartService(b, "echo".into()),
        );
        cs.run_until(SimTime::from_secs(3));
        let pid2 = cs.cluster().service_pid(b, &"echo".into()).unwrap();
        assert_ne!(pid1, pid2, "restart must create a new incarnation");
    }

    /// A process that arms a timer and counts fires.
    struct Ticker {
        period: SimDuration,
        fires: Arc<AtomicU32>,
    }
    impl Process for Ticker {
        fn on_start(&mut self, env: &mut dyn ProcessEnv) {
            env.set_timer(self.period, 1);
        }
        fn on_timer(&mut self, _token: u64, env: &mut dyn ProcessEnv) {
            self.fires.fetch_add(1, Ordering::SeqCst);
            env.set_timer(self.period, 1);
        }
    }

    #[test]
    fn timers_fire_periodically_and_die_with_the_process() {
        let (mut cs, a, _b) = two_node_cluster(4);
        let fires = Arc::new(AtomicU32::new(0));
        let f = fires.clone();
        cs.register_service(
            a,
            "ticker",
            Box::new(move || {
                Box::new(Ticker { period: SimDuration::from_millis(100), fires: f.clone() })
            }),
            true,
        );
        cs.start();
        cs.run_until(SimTime::from_secs(1));
        // Service start is jittered within 0..500 ms (NT startup model) plus
        // a 20 ms spawn delay, so between ~4 and 10 fires land inside 1 s.
        let after_1s = fires.load(Ordering::SeqCst);
        assert!((4..=10).contains(&after_1s), "got {after_1s} fires");
        crate::fault::inject(
            &mut cs,
            SimTime::from_secs(1),
            crate::fault::Fault::KillService(a, "ticker".into()),
        );
        cs.run_until(SimTime::from_secs(3));
        let after_kill = fires.load(Ordering::SeqCst);
        assert!(after_kill <= after_1s + 1, "timers must stop after kill");
    }

    #[test]
    fn reboot_relaunches_autostart_services() {
        let (mut cs, a, _b) = two_node_cluster(5);
        let fires = Arc::new(AtomicU32::new(0));
        let f = fires.clone();
        cs.register_service(
            a,
            "ticker",
            Box::new(move || {
                Box::new(Ticker { period: SimDuration::from_millis(100), fires: f.clone() })
            }),
            true,
        );
        cs.start();
        crate::fault::inject(&mut cs, SimTime::from_secs(1), crate::fault::Fault::RebootNode(a));
        cs.run_until(SimTime::from_secs(60));
        assert_eq!(cs.cluster().node(a).boot_count, 2);
        assert!(cs.cluster().node(a).status.is_up());
        assert!(cs.cluster().is_service_running(a, &"ticker".into()));
        // Ticker ticked before the reboot and again after.
        assert!(fires.load(Ordering::SeqCst) > 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let (mut cs, a, b) = two_node_cluster(seed);
            let replies = Arc::new(AtomicU32::new(0));
            let r = replies.clone();
            cs.register_service(b, "echo", Box::new(|| Box::new(Echo)), true);
            cs.register_service(
                a,
                "pinger",
                Box::new(move || {
                    Box::new(Pinger { peer: Endpoint::new(b, "echo"), replies: r.clone() })
                }),
                true,
            );
            cs.start();
            cs.run_until(SimTime::from_secs(5));
            cs.trace().to_text()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::link::PathConfig;

    #[test]
    fn connect_replaces_an_existing_link() {
        let mut cs = ClusterSim::new(1);
        let a = cs.add_node(NodeConfig::default());
        let b = cs.add_node(NodeConfig::default());
        cs.connect(a, b, Link::dual());
        assert_eq!(cs.cluster().link(a, b).unwrap().path_count(), 2);
        cs.connect(a, b, Link::new(vec![PathConfig::default().with_loss(0.5)]));
        assert_eq!(cs.cluster().link(a, b).unwrap().path_count(), 1);
        // Link lookup is symmetric.
        assert!(cs.cluster().link(b, a).is_some());
    }

    #[test]
    #[should_panic(expected = "cannot link a node to itself")]
    fn self_link_rejected() {
        let mut cs = ClusterSim::new(1);
        let a = cs.add_node(NodeConfig::default());
        cs.connect(a, a, Link::single());
    }

    #[test]
    fn post_to_unknown_service_counts_a_drop() {
        let mut cs = ClusterSim::new(2);
        let a = cs.add_node(NodeConfig::default());
        cs.post(SimTime::from_millis(1), Endpoint::new(a, "nobody"), 42u32);
        cs.run_until(SimTime::from_secs(1));
        assert_eq!(cs.cluster().counters().dropped_no_service, 1);
        assert_eq!(cs.cluster().counters().delivered, 0);
    }

    #[test]
    fn start_service_without_spec_records_a_trace() {
        let mut cs = ClusterSim::new(3);
        let a = cs.add_node(NodeConfig::default());
        cs.start_service_at(SimTime::from_millis(1), a, "ghost");
        cs.run_until(SimTime::from_secs(1));
        assert!(cs.trace().find("no spec registered").is_some());
        assert!(!cs.cluster().is_service_running(a, &"ghost".into()));
    }

    #[test]
    fn messages_between_unconnected_nodes_drop_as_no_path() {
        struct Shout {
            to: Endpoint,
        }
        impl Process for Shout {
            fn on_start(&mut self, env: &mut dyn ProcessEnv) {
                crate::process::ProcessEnvExt::send_msg(env, self.to.clone(), 1u8);
            }
        }
        let mut cs = ClusterSim::new(4);
        let a = cs.add_node(NodeConfig::default());
        let b = cs.add_node(NodeConfig::default());
        // No connect(a, b).
        let to = Endpoint::new(b, "x");
        cs.register_service(a, "shout", Box::new(move || Box::new(Shout { to: to.clone() })), true);
        cs.start();
        cs.run_until(SimTime::from_secs(1));
        assert_eq!(cs.cluster().counters().dropped_no_path, 1);
    }

    #[test]
    fn trace_net_flag_records_sends() {
        struct SelfSend;
        impl Process for SelfSend {
            fn on_start(&mut self, env: &mut dyn ProcessEnv) {
                let me = env.self_endpoint();
                crate::process::ProcessEnvExt::send_msg(env, me, 1u8);
            }
        }
        let mut cs = ClusterSim::new(5);
        let a = cs.add_node(NodeConfig::default());
        cs.register_service(a, "echo", Box::new(|| Box::new(SelfSend)), true);
        cs.cluster_mut().trace_net = true;
        cs.start();
        cs.run_until(SimTime::from_secs(1));
        assert!(cs.trace().find("send node0/echo -> node0/echo").is_some());
    }
}
