//! Umbrella package holding cross-crate integration tests and runnable examples.
