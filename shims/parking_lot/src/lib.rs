//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly rather than `Result`s.
//! A poisoned std lock (a panic while held) here recovers the inner value,
//! matching parking_lot's behavior of not propagating poison.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutual-exclusion primitive with a non-poisoning `lock`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(sync::TryLockError::Poisoned(poisoned)) => {
                Some(MutexGuard { inner: poisoned.into_inner() })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

/// A reader-writer lock with non-poisoning `read`/`write`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn panic_while_locked_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
