//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde shim.
//!
//! No `syn`/`quote`: the item is parsed directly off the `TokenStream` and
//! the impls are emitted as strings. The parser handles exactly the shapes
//! this workspace derives on — non-generic structs (named, tuple, newtype,
//! unit) and enums whose variants are unit, newtype, tuple, or struct-like —
//! plus the one attribute in use, `#[serde(skip)]` on named struct fields.
//! Anything else is rejected with a `compile_error!` so a future use of an
//! unsupported serde feature fails loudly at the derive site.

use proc_macro::{Delimiter, TokenStream, TokenTree};

type Iter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    Unit,
    Newtype,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    kind: Kind,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_serialize(&parsed).parse().expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_deserialize(&parsed).parse().expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().expect("compile_error parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut it = input.into_iter().peekable();
    if take_attrs(&mut it)? {
        return Err("#[serde(skip)] is not supported at type level".into());
    }
    take_vis(&mut it);
    let keyword = expect_ident(&mut it)?;
    let name = expect_ident(&mut it)?;
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("offline serde derive does not support generics (on `{name}`)"));
    }
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                match count_tuple_fields(g.stream())? {
                    1 => Shape::Newtype,
                    n => Shape::Tuple(n),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            None => Shape::Unit,
            Some(other) => return Err(format!("unexpected token `{other}` in struct `{name}`")),
        }),
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            _ => return Err(format!("expected braces after enum `{name}`")),
        },
        other => return Err(format!("derive supports structs and enums, found `{other}`")),
    };
    Ok(Input { name, kind })
}

/// Skips leading attributes, returning whether one of them was
/// `#[serde(skip)]`. Any other `#[serde(...)]` content is an error.
fn take_attrs(it: &mut Iter) -> Result<bool, String> {
    let mut skip = false;
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        let group = match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            _ => return Err("malformed attribute".into()),
        };
        let mut inner = group.stream().into_iter();
        if matches!(&inner.next(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
            let args = match inner.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
                _ => return Err("malformed #[serde(...)] attribute".into()),
            };
            for token in args.stream() {
                match &token {
                    TokenTree::Ident(id) if id.to_string() == "skip" => skip = true,
                    TokenTree::Punct(p) if p.as_char() == ',' => {}
                    other => {
                        return Err(format!(
                            "offline serde derive only supports #[serde(skip)], found `{other}`"
                        ))
                    }
                }
            }
        }
    }
    Ok(skip)
}

/// Skips a `pub` / `pub(...)` visibility qualifier if present.
fn take_vis(it: &mut Iter) {
    if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }
}

fn expect_ident(it: &mut Iter) -> Result<String, String> {
    match it.next() {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        Some(other) => Err(format!("expected identifier, found `{other}`")),
        None => Err("expected identifier, found end of input".into()),
    }
}

/// Consumes one type, up to and including a top-level `,` (or end of input),
/// tracking `<`/`>` depth so commas inside generic arguments don't split.
fn consume_type(it: &mut Iter) {
    let mut depth = 0i64;
    while let Some(token) = it.peek() {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                ',' if depth == 0 => {
                    it.next();
                    return;
                }
                '<' => depth += 1,
                '>' => depth -= 1,
                _ => {}
            }
        }
        it.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut it = stream.into_iter().peekable();
    let mut fields = Vec::new();
    while it.peek().is_some() {
        let skip = take_attrs(&mut it)?;
        take_vis(&mut it);
        if it.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut it)?;
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        consume_type(&mut it);
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> Result<usize, String> {
    let mut it = stream.into_iter().peekable();
    let mut count = 0;
    while it.peek().is_some() {
        if take_attrs(&mut it)? {
            return Err("#[serde(skip)] is not supported on tuple fields".into());
        }
        take_vis(&mut it);
        if it.peek().is_none() {
            break;
        }
        consume_type(&mut it);
        count += 1;
    }
    Ok(count)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    while it.peek().is_some() {
        if take_attrs(&mut it)? {
            return Err("#[serde(skip)] is not supported on enum variants".into());
        }
        if it.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut it)?;
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                it.next();
                let fields = parse_named_fields(inner)?;
                if fields.iter().any(|f| f.skip) {
                    return Err("#[serde(skip)] is not supported inside enum variants".into());
                }
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                it.next();
                match count_tuple_fields(inner)? {
                    1 => Shape::Newtype,
                    n => Shape::Tuple(n),
                }
            }
            _ => Shape::Unit,
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => {}
            Some(other) => {
                return Err(format!(
                    "unexpected token `{other}` after variant `{name}` (discriminants unsupported)"
                ))
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Unit) => format!("serializer.serialize_unit_struct(\"{name}\")"),
        Kind::Struct(Shape::Newtype) => {
            format!("serializer.serialize_newtype_struct(\"{name}\", &self.0)")
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let mut s =
                format!("let mut state = serializer.serialize_tuple_struct(\"{name}\", {n})?;\n");
            for i in 0..*n {
                s.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut state, &self.{i})?;\n"
                ));
            }
            s.push_str("::serde::ser::SerializeTupleStruct::end(state)");
            s
        }
        Kind::Struct(Shape::Named(fields)) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let mut s = format!(
                "let mut state = serializer.serialize_struct(\"{name}\", {})?;\n",
                live.len()
            );
            for f in &live {
                s.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut state, \"{0}\", &self.{0})?;\n",
                    f.name
                ));
            }
            s.push_str("::serde::ser::SerializeStruct::end(state)");
            s
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (i, v) in variants.iter().enumerate() {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serializer.serialize_unit_variant(\"{name}\", {i}u32, \"{vn}\"),\n"
                    )),
                    Shape::Newtype => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => serializer.serialize_newtype_variant(\"{name}\", {i}u32, \"{vn}\", __f0),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|j| format!("__f{j}")).collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds_pat}) => {{\n\
                             let mut state = serializer.serialize_tuple_variant(\"{name}\", {i}u32, \"{vn}\", {n})?;\n",
                            binds_pat = binds.join(", ")
                        ));
                        for b in &binds {
                            arms.push_str(&format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut state, {b})?;\n"
                            ));
                        }
                        arms.push_str("::serde::ser::SerializeTupleVariant::end(state)\n}\n");
                    }
                    Shape::Named(fields) => {
                        let names: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pat} }} => {{\n\
                             let mut state = serializer.serialize_struct_variant(\"{name}\", {i}u32, \"{vn}\", {len})?;\n",
                            pat = names.join(", "),
                            len = names.len()
                        ));
                        for f in &names {
                            arms.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut state, \"{f}\", {f})?;\n"
                            ));
                        }
                        arms.push_str("::serde::ser::SerializeStructVariant::end(state)\n}\n");
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, serializer: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

/// Emits `visit_seq` statements binding `names` in order from the access,
/// erroring with `missing_field`/`invalid_length` context when short.
fn seq_bindings(names: &[String]) -> String {
    let mut s = String::new();
    for name in names {
        s.push_str(&format!(
            "let {name} = match ::serde::de::SeqAccess::next_element(&mut __seq_access)? {{\n\
             ::core::option::Option::Some(v) => v,\n\
             ::core::option::Option::None => return ::core::result::Result::Err(\
             ::serde::de::Error::custom(\"input ended before `{name}`\")),\n}};\n"
        ));
    }
    s
}

/// Emits a visitor struct definition named `vis` with a `visit_seq` that
/// binds `names` and finishes with `construct` (an expression using them).
fn seq_visitor(
    vis: &str,
    value: &str,
    expecting: &str,
    names: &[String],
    construct: &str,
) -> String {
    format!(
        "struct {vis};\n\
         impl<'de> ::serde::de::Visitor<'de> for {vis} {{\n\
         type Value = {value};\n\
         fn expecting(&self, f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
         f.write_str({expecting:?})\n}}\n\
         fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq_access: __A) \
         -> ::core::result::Result<{value}, __A::Error> {{\n\
         {bindings}\
         ::core::result::Result::Ok({construct})\n}}\n}}\n",
        bindings = seq_bindings(names)
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Unit) => format!(
            "struct __Visitor;\n\
             impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
             type Value = {name};\n\
             fn expecting(&self, f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
             f.write_str(\"unit struct {name}\")\n}}\n\
             fn visit_unit<__E: ::serde::de::Error>(self) -> ::core::result::Result<{name}, __E> {{\n\
             ::core::result::Result::Ok({name})\n}}\n}}\n\
             deserializer.deserialize_unit_struct(\"{name}\", __Visitor)"
        ),
        Kind::Struct(Shape::Newtype) => format!(
            "struct __Visitor;\n\
             impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
             type Value = {name};\n\
             fn expecting(&self, f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
             f.write_str(\"newtype struct {name}\")\n}}\n\
             fn visit_newtype_struct<__D: ::serde::Deserializer<'de>>(self, d: __D) \
             -> ::core::result::Result<{name}, __D::Error> {{\n\
             ::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(d)?))\n}}\n}}\n\
             deserializer.deserialize_newtype_struct(\"{name}\", __Visitor)"
        ),
        Kind::Struct(Shape::Tuple(n)) => {
            let names: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let construct = format!("{name}({})", names.join(", "));
            format!(
                "{visitor}\
                 deserializer.deserialize_tuple_struct(\"{name}\", {n}, __Visitor)",
                visitor = seq_visitor(
                    "__Visitor",
                    name,
                    &format!("tuple struct {name}"),
                    &names,
                    &construct
                )
            )
        }
        Kind::Struct(Shape::Named(fields)) => {
            let live: Vec<String> =
                fields.iter().filter(|f| !f.skip).map(|f| f.name.clone()).collect();
            let mut init: Vec<String> = live.clone();
            for f in fields.iter().filter(|f| f.skip) {
                init.push(format!("{}: ::core::default::Default::default()", f.name));
            }
            let construct = format!("{name} {{ {} }}", init.join(", "));
            let field_names =
                live.iter().map(|n| format!("{n:?}")).collect::<Vec<_>>().join(", ");
            format!(
                "{visitor}\
                 deserializer.deserialize_struct(\"{name}\", &[{field_names}], __Visitor)",
                visitor =
                    seq_visitor("__Visitor", name, &format!("struct {name}"), &live, &construct)
            )
        }
        Kind::Enum(variants) => {
            let variant_names =
                variants.iter().map(|v| format!("{:?}", v.name)).collect::<Vec<_>>().join(", ");
            let mut arms = String::new();
            for (i, v) in variants.iter().enumerate() {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{i}u32 => {{\n\
                         ::serde::de::VariantAccess::unit_variant(__variant)?;\n\
                         ::core::result::Result::Ok({name}::{vn})\n}}\n"
                    )),
                    Shape::Newtype => arms.push_str(&format!(
                        "{i}u32 => ::core::result::Result::Ok({name}::{vn}(\
                         ::serde::de::VariantAccess::newtype_variant(__variant)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let names: Vec<String> = (0..*n).map(|j| format!("__f{j}")).collect();
                        let construct = format!("{name}::{vn}({})", names.join(", "));
                        arms.push_str(&format!(
                            "{i}u32 => {{\n{visitor}\
                             ::serde::de::VariantAccess::tuple_variant(__variant, {n}, __V{i})\n}}\n",
                            visitor = seq_visitor(
                                &format!("__V{i}"),
                                name,
                                &format!("tuple variant {name}::{vn}"),
                                &names,
                                &construct
                            )
                        ));
                    }
                    Shape::Named(fields) => {
                        let names: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let construct = format!("{name}::{vn} {{ {} }}", names.join(", "));
                        let field_names =
                            names.iter().map(|n| format!("{n:?}")).collect::<Vec<_>>().join(", ");
                        arms.push_str(&format!(
                            "{i}u32 => {{\n{visitor}\
                             ::serde::de::VariantAccess::struct_variant(__variant, &[{field_names}], __V{i})\n}}\n",
                            visitor = seq_visitor(
                                &format!("__V{i}"),
                                name,
                                &format!("struct variant {name}::{vn}"),
                                &names,
                                &construct
                            )
                        ));
                    }
                }
            }
            format!(
                "struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                 f.write_str(\"enum {name}\")\n}}\n\
                 fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, data: __A) \
                 -> ::core::result::Result<{name}, __A::Error> {{\n\
                 let (__index, __variant): (u32, _) = ::serde::de::EnumAccess::variant(data)?;\n\
                 match __index {{\n{arms}\
                 __other => ::core::result::Result::Err(::serde::de::Error::unknown_variant(\
                 __other as u64, &[{variant_names}])),\n}}\n}}\n}}\n\
                 deserializer.deserialize_enum(\"{name}\", &[{variant_names}], __Visitor)"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(deserializer: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n{body}\n}}\n}}\n"
    )
}
