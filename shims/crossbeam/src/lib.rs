//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc` with
//! crossbeam's API shape: cloneable `Sender`, `recv_timeout` returning
//! `RecvTimeoutError`, and error types that don't expose std's poison
//! machinery.

#![forbid(unsafe_code)]

pub mod channel {
    //! Multi-producer single-consumer channels (crossbeam exposes mpmc; the
    //! workspace only ever clones senders, which mpsc covers).

    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Receives a message if one is already queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// The receiver disconnected before the message was sent.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// All senders disconnected with the channel empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Outcome of a timed-out or disconnected `recv_timeout`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message within the timeout.
        Timeout,
        /// All senders disconnected with the channel empty.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    /// Outcome of a failed `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected with the channel empty.
        Disconnected,
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_timeout_reports_timeout_then_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
