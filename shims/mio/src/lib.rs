//! Offline stand-in for the readiness-polling subset of `mio`.
//!
//! The workspace builds with no registry access, so external crates
//! resolve to local shims implementing exactly the API subset the
//! workspace uses. `oftt-wire`'s reactor needs four things from mio:
//! a [`Poll`] that multiplexes nonblocking sockets, [`Interest`] flags,
//! an [`Events`] buffer, and a [`Waker`] for cross-thread wakeups.
//!
//! On Linux this is a thin wrapper over `epoll(7)` via hand-declared
//! `extern "C"` prototypes (std already links libc, so they resolve
//! without a build script). On other Unixes it falls back to `poll(2)`.
//! Registration is **level-triggered**: a readable socket keeps
//! reporting readable until drained, so a reactor that stops reading
//! mid-burst for fairness is re-notified on the next poll.
//!
//! Divergences from real mio, on purpose (documented so a future swap
//! to the real crate knows what to reconcile):
//!
//! - `register` takes `&impl AsRawFd` directly instead of going through
//!   a `Registry` and `event::Source`.
//! - The waker is a `UnixStream` self-pipe and is level-triggered; the
//!   owner must call [`Waker::drain`] when its token fires.

use std::io;
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Identifies one registered file descriptor in poll results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// Readiness interest flags for registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub const READABLE: Interest = Interest(0b01);
    /// Wake when the fd is writable.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combines two interests (named `add` for drop-in parity with the
    /// real mio API).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// `true` if this interest includes readability.
    pub fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// `true` if this interest includes writability.
    pub fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    error: bool,
}

impl Event {
    /// The token supplied at registration.
    pub fn token(&self) -> Token {
        self.token
    }

    /// The fd is readable (includes peer hangup, which reads as EOF).
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// The fd is writable.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// The fd is in an error state (`EPOLLERR`); read/write it to
    /// surface the concrete `io::Error`.
    pub fn is_error(&self) -> bool {
        self.error
    }
}

/// Reusable buffer of poll results.
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// A buffer that accepts up to `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events { inner: Vec::with_capacity(capacity), capacity: capacity.max(1) }
    }

    /// Iterates the events from the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// `true` if the last poll returned nothing (timeout).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// Readiness selector over registered file descriptors.
#[derive(Debug)]
pub struct Poll {
    sys: sys::Selector,
}

impl Poll {
    /// Creates a selector.
    pub fn new() -> io::Result<Poll> {
        Ok(Poll { sys: sys::Selector::new()? })
    }

    /// Registers `source` under `token`. The fd should already be in
    /// nonblocking mode; registration is level-triggered.
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.sys.register(source.as_raw_fd(), token, interest)
    }

    /// Changes the interest set of an already registered fd.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.sys.reregister(source.as_raw_fd(), token, interest)
    }

    /// Removes an fd from the selector. Dropping the socket also
    /// removes it on Linux; the portable backend needs the explicit
    /// call, so the reactor always makes it.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.sys.deregister(source.as_raw_fd())
    }

    /// Blocks until readiness or `timeout`, filling `events`. A `None`
    /// timeout blocks indefinitely. Interrupted waits (`EINTR`) are
    /// retried internally.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.inner.clear();
        self.sys.select(&mut events.inner, events.capacity, timeout)
    }
}

/// Cross-thread wakeup handle: a nonblocking `UnixStream` self-pipe
/// whose read end is registered with the [`Poll`].
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
    rx: UnixStream,
}

impl Waker {
    /// Creates the pipe and registers its read end under `token`.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        poll.register(&rx, token, Interest::READABLE)?;
        Ok(Waker { tx, rx })
    }

    /// Makes the next (or current) poll return with this waker's token.
    /// Idempotent while unconsumed: a full pipe means a wake is already
    /// pending, which is all a wake means.
    pub fn wake(&self) -> io::Result<()> {
        match io::Write::write(&mut &self.tx, &[1u8]) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Consumes pending wakeups; call when the waker token fires (the
    /// registration is level-triggered, so an undrained pipe would spin
    /// the poll loop).
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        loop {
            match io::Read::read(&mut (&self.rx), &mut sink) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(_) => return,
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! `epoll(7)` backend. The prototypes are declared by hand — std
    //! links libc, so they resolve at link time without a `libc` crate.

    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    use super::{Event, Interest, Token};

    // x86_64 Linux declares `struct epoll_event` packed; matching the C
    // layout exactly is what makes the calls below sound.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    #[derive(Debug)]
    pub struct Selector {
        epfd: RawFd,
    }

    fn mask_of(interest: Interest) -> u32 {
        let mut mask = EPOLLRDHUP;
        if interest.is_readable() {
            mask |= EPOLLIN;
        }
        if interest.is_writable() {
            mask |= EPOLLOUT;
        }
        mask
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            // SAFETY: epoll_create1 takes a flag word and returns an fd
            // or -1; no pointers cross the boundary.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Selector { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, mask: u32, token: usize) -> io::Result<()> {
            let mut ev = EpollEvent { events: mask, data: token as u64 };
            // SAFETY: `ev` outlives the call and matches the kernel's
            // expected (packed) layout; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, mask_of(interest), token.0)
        }

        pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, mask_of(interest), token.0)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub fn select(
            &self,
            out: &mut Vec<Event>,
            capacity: usize,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let timeout_ms = match timeout {
                None => -1,
                Some(t) => i32::try_from(t.as_millis()).unwrap_or(i32::MAX),
            };
            let mut buf = vec![EpollEvent { events: 0, data: 0 }; capacity];
            loop {
                // SAFETY: `buf` is a live, writable array of `capacity`
                // EpollEvents; the kernel fills at most that many.
                let n =
                    unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), capacity as i32, timeout_ms) };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(err);
                }
                for ev in buf.iter().take(n as usize) {
                    // Copy out of the packed struct before use.
                    let mask = ev.events;
                    let data = ev.data;
                    out.push(Event {
                        token: Token(data as usize),
                        readable: mask & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0,
                        writable: mask & EPOLLOUT != 0,
                        error: mask & EPOLLERR != 0,
                    });
                }
                return Ok(());
            }
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            // SAFETY: closing an fd we own exactly once.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! Portable `poll(2)` backend for non-Linux Unixes. Keeps the
    //! registration table in userspace; O(fds) per wait, which is fine
    //! for the fallback platforms.

    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    use super::{Event, Interest, Token};

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[derive(Debug)]
    pub struct Selector {
        registered: Mutex<Vec<(RawFd, Token, Interest)>>,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            Ok(Selector { registered: Mutex::new(Vec::new()) })
        }

        fn table(&self) -> std::sync::MutexGuard<'_, Vec<(RawFd, Token, Interest)>> {
            self.registered.lock().unwrap_or_else(|e| e.into_inner())
        }

        pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            let mut table = self.table();
            if table.iter().any(|(f, _, _)| *f == fd) {
                return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd registered"));
            }
            table.push((fd, token, interest));
            Ok(())
        }

        pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            let mut table = self.table();
            for entry in table.iter_mut() {
                if entry.0 == fd {
                    *entry = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut table = self.table();
            let before = table.len();
            table.retain(|(f, _, _)| *f != fd);
            if table.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub fn select(
            &self,
            out: &mut Vec<Event>,
            capacity: usize,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let snapshot = self.table().clone();
            let mut fds: Vec<PollFd> = snapshot
                .iter()
                .map(|(fd, _, interest)| PollFd {
                    fd: *fd,
                    events: if interest.is_readable() { POLLIN } else { 0 }
                        | if interest.is_writable() { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let timeout_ms = match timeout {
                None => -1,
                Some(t) => i32::try_from(t.as_millis()).unwrap_or(i32::MAX),
            };
            loop {
                // SAFETY: `fds` is a live array of matching C layout;
                // the kernel writes only `revents` within it.
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(err);
                }
                for (pfd, (_, token, _)) in fds.iter().zip(snapshot.iter()) {
                    if pfd.revents == 0 {
                        continue;
                    }
                    if out.len() >= capacity {
                        break;
                    }
                    out.push(Event {
                        token: *token,
                        readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                        writable: pfd.revents & POLLOUT != 0,
                        error: pfd.revents & POLLERR != 0,
                    });
                }
                return Ok(());
            }
        }
    }
}

#[cfg(not(unix))]
compile_error!("the mio shim supports Unix targets only (epoll on Linux, poll(2) elsewhere)");

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn listener_becomes_readable_on_connect() {
        let poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poll.register(&listener, Token(7), Interest::READABLE).unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        let tokens: Vec<Token> = events.iter().map(|e| e.token()).collect();
        assert!(tokens.contains(&Token(7)));
        assert!(events.iter().any(|e| e.token() == Token(7) && e.is_readable()));
    }

    #[test]
    fn connected_stream_reports_writable_and_then_readable() {
        let poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        client.set_nonblocking(true).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        poll.register(&client, Token(1), Interest::READABLE.add(Interest::WRITABLE)).unwrap();

        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token() == Token(1) && e.is_writable()));

        server_side.write_all(b"x").unwrap();
        // Narrow to readability so the writable side can't mask it.
        poll.reregister(&client, Token(1), Interest::READABLE).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut saw_readable = false;
        while Instant::now() < deadline && !saw_readable {
            poll.poll(&mut events, Some(Duration::from_millis(100))).unwrap();
            saw_readable = events.iter().any(|e| e.token() == Token(1) && e.is_readable());
        }
        assert!(saw_readable);
        let mut byte = [0u8; 1];
        (&client).read_exact(&mut byte).unwrap();
        assert_eq!(byte[0], b'x');
    }

    #[test]
    fn waker_wakes_a_blocked_poll_and_drains() {
        let poll = Poll::new().unwrap();
        let waker = Waker::new(&poll, Token(99)).unwrap();
        waker.wake().unwrap();
        waker.wake().unwrap(); // coalesces, no error
        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token() == Token(99) && e.is_readable()));
        waker.drain();
        // Drained: a short poll now times out quietly.
        poll.poll(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn deregistered_fd_is_silent() {
        let poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poll.register(&listener, Token(3), Interest::READABLE).unwrap();
        poll.deregister(&listener).unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, Some(Duration::from_millis(100))).unwrap();
        assert!(events.is_empty());
    }
}
