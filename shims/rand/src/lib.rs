//! Offline stand-in for the `rand` crate.
//!
//! Provides `rngs::SmallRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! extension methods (`gen`, `gen_range`, `gen_bool`) for the scalar and
//! range types this workspace draws — nothing more. The generator is
//! SplitMix64: tiny, fast, passes the statistical expectations of the
//! simulator's tests, and (critically for `SimRng`) a pure function of its
//! 64-bit seed.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// A uniform value of a samplable type.
    #[allow(unknown_lints, keyword_idents_2024)]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// A uniform float in `[0, 1)`, using the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Rejection-sampled uniform integer in `[0, bound)`.
///
/// # Panics
///
/// Panics if `bound` is zero.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    // Widening-multiply rejection (Lemire); the retry zone is < bound/2^64.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let wide = (rng.next_u64() as u128) * (bound as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

/// Types samplable uniformly over their whole domain (the analog of rand's
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {
        $(
            impl Standard for $ty {
                fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable uniformly (the analog of rand's `SampleRange`).
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {
        $(
            impl SampleRange for Range<$ty> {
                type Output = $ty;
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample from an empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(uniform_below(rng, span) as $ty)
                }
            }

            impl SampleRange for RangeInclusive<$ty> {
                type Output = $ty;
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "cannot sample from an empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    lo.wrapping_add(uniform_below(rng, span + 1) as $ty)
                }
            }
        )*
    };
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($ty:ty),*) => {
        $(
            impl SampleRange for Range<$ty> {
                type Output = $ty;
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample from an empty range");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    self.start.wrapping_add(uniform_below(rng, span) as $ty)
                }
            }

            impl SampleRange for RangeInclusive<$ty> {
                type Output = $ty;
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "cannot sample from an empty range");
                    let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    lo.wrapping_add(uniform_below(rng, span + 1) as $ty)
                }
            }
        )*
    };
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "cannot sample from an empty or non-finite range"
        );
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "cannot sample from an empty or non-finite range"
        );
        let v = self.start + (unit_f64(rng) as f32) * (self.end - self.start);
        if v >= self.end {
            self.end - (self.end - self.start) * f32::EPSILON
        } else {
            v
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64 core).
    ///
    /// Not cryptographically secure — simulation use only, matching the
    /// contract of rand's `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_are_half_open() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let avg = total / n as f64;
        assert!((avg - 0.5).abs() < 0.01, "mean {avg} too far from 0.5");
    }
}
