//! Offline stand-in for [serde](https://serde.rs).
//!
//! The build environment for this repository has no access to crates.io, so
//! this crate reimplements the subset of the serde data model the workspace
//! actually exercises: the `Serialize`/`Deserialize` traits, the
//! `Serializer`/`Deserializer` driver traits with their compound access
//! types, visitor plumbing, and impls for the std types that appear in
//! messages and checkpoints. `comsim::marshal` is the only binary format in
//! the tree and drives both sides of this API, so fidelity is judged against
//! its needs rather than against the full serde contract.

#![forbid(unsafe_code)]

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod ser {
    //! Serialization half of the data model.

    use std::fmt;

    /// Error constraint for serializers.
    pub trait Error: Sized + fmt::Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// A data structure that can hand itself to any [`Serializer`].
    pub trait Serialize {
        /// Drives `serializer` with this value's content.
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }

    /// A format backend receiving the serde data model.
    pub trait Serializer: Sized {
        /// Output on success.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Sequence sub-serializer.
        type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
        /// Tuple sub-serializer.
        type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
        /// Tuple-struct sub-serializer.
        type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
        /// Tuple-variant sub-serializer.
        type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
        /// Map sub-serializer.
        type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
        /// Struct sub-serializer.
        type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
        /// Struct-variant sub-serializer.
        type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

        /// Serializes a `bool`.
        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `i8`.
        fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `i16`.
        fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `i32`.
        fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `i64`.
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `u8`.
        fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `u16`.
        fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `u32`.
        fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `u64`.
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `f32`.
        fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `f64`.
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `char`.
        fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
        /// Serializes a string slice.
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
        /// Serializes raw bytes.
        fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
        /// Serializes `None`.
        fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
        /// Serializes `Some(value)`.
        fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
        /// Serializes `()`.
        fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
        /// Serializes a unit struct.
        fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
        /// Serializes a unit enum variant.
        fn serialize_unit_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
        ) -> Result<Self::Ok, Self::Error>;
        /// Serializes a newtype struct.
        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            name: &'static str,
            value: &T,
        ) -> Result<Self::Ok, Self::Error>;
        /// Serializes a newtype enum variant.
        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            value: &T,
        ) -> Result<Self::Ok, Self::Error>;
        /// Begins a sequence.
        fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
        /// Begins a tuple.
        fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
        /// Begins a tuple struct.
        fn serialize_tuple_struct(
            self,
            name: &'static str,
            len: usize,
        ) -> Result<Self::SerializeTupleStruct, Self::Error>;
        /// Begins a tuple variant.
        fn serialize_tuple_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            len: usize,
        ) -> Result<Self::SerializeTupleVariant, Self::Error>;
        /// Begins a map.
        fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
        /// Begins a struct.
        fn serialize_struct(
            self,
            name: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStruct, Self::Error>;
        /// Begins a struct variant.
        fn serialize_struct_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStructVariant, Self::Error>;
    }

    /// Sequence body.
    pub trait SerializeSeq {
        /// Output on success.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serializes one element.
        fn serialize_element<T: Serialize + ?Sized>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finishes the sequence.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Tuple body.
    pub trait SerializeTuple {
        /// Output on success.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serializes one element.
        fn serialize_element<T: Serialize + ?Sized>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finishes the tuple.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Tuple-struct body.
    pub trait SerializeTupleStruct {
        /// Output on success.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serializes one field.
        fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
        /// Finishes the struct.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Tuple-variant body.
    pub trait SerializeTupleVariant {
        /// Output on success.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serializes one field.
        fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
        /// Finishes the variant.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Map body.
    pub trait SerializeMap {
        /// Output on success.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serializes one key.
        fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
        /// Serializes one value.
        fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
        /// Finishes the map.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Struct body.
    pub trait SerializeStruct {
        /// Output on success.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serializes one named field.
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finishes the struct.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Struct-variant body.
    pub trait SerializeStructVariant {
        /// Output on success.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serializes one named field.
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finishes the variant.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }
}

pub mod de {
    //! Deserialization half of the data model.

    use std::fmt;
    use std::marker::PhantomData;

    /// Error constraint for deserializers.
    pub trait Error: Sized + fmt::Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
        /// An unknown enum variant index was encountered.
        fn unknown_variant(index: u64, expected: &'static [&'static str]) -> Self {
            Self::custom(format_args!(
                "unknown variant index {index}, expected one of {expected:?}"
            ))
        }
        /// Input ended before all fields were seen.
        fn missing_field(field: &'static str) -> Self {
            Self::custom(format_args!("missing field {field}"))
        }
        /// The input length did not match.
        fn invalid_length(len: usize, expected: &dyn fmt::Display) -> Self {
            Self::custom(format_args!("invalid length {len}, expected {expected}"))
        }
    }

    /// A type constructible from any [`Deserializer`].
    pub trait Deserialize<'de>: Sized {
        /// Drives `deserializer`, producing the value.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }

    /// A `Deserialize` usable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

    /// Stateful deserialization entry point (the stateless case is
    /// [`PhantomData`]).
    pub trait DeserializeSeed<'de>: Sized {
        /// Produced value.
        type Value;
        /// Drives `deserializer`, producing the value.
        fn deserialize<D: Deserializer<'de>>(
            self,
            deserializer: D,
        ) -> Result<Self::Value, D::Error>;
    }

    impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
        type Value = T;
        fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
            T::deserialize(deserializer)
        }
    }

    /// A format backend producing the serde data model.
    pub trait Deserializer<'de>: Sized {
        /// Error type.
        type Error: Error;

        /// Self-describing formats only.
        fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes a `bool`.
        fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes an `i8`.
        fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes an `i16`.
        fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes an `i32`.
        fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes an `i64`.
        fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes a `u8`.
        fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes a `u16`.
        fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes a `u32`.
        fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes a `u64`.
        fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes an `f32`.
        fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes an `f64`.
        fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes a `char`.
        fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes a borrowed string.
        fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes an owned string.
        fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes borrowed bytes.
        fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes an owned byte buffer.
        fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V)
            -> Result<V::Value, Self::Error>;
        /// Deserializes an `Option`.
        fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes `()`.
        fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes a unit struct.
        fn deserialize_unit_struct<V: Visitor<'de>>(
            self,
            name: &'static str,
            visitor: V,
        ) -> Result<V::Value, Self::Error>;
        /// Deserializes a newtype struct.
        fn deserialize_newtype_struct<V: Visitor<'de>>(
            self,
            name: &'static str,
            visitor: V,
        ) -> Result<V::Value, Self::Error>;
        /// Deserializes a sequence.
        fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes a fixed-size tuple.
        fn deserialize_tuple<V: Visitor<'de>>(
            self,
            len: usize,
            visitor: V,
        ) -> Result<V::Value, Self::Error>;
        /// Deserializes a tuple struct.
        fn deserialize_tuple_struct<V: Visitor<'de>>(
            self,
            name: &'static str,
            len: usize,
            visitor: V,
        ) -> Result<V::Value, Self::Error>;
        /// Deserializes a map.
        fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        /// Deserializes a struct.
        fn deserialize_struct<V: Visitor<'de>>(
            self,
            name: &'static str,
            fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, Self::Error>;
        /// Deserializes an enum.
        fn deserialize_enum<V: Visitor<'de>>(
            self,
            name: &'static str,
            variants: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, Self::Error>;
        /// Deserializes a field/variant identifier.
        fn deserialize_identifier<V: Visitor<'de>>(
            self,
            visitor: V,
        ) -> Result<V::Value, Self::Error>;
        /// Skips a value (self-describing formats only).
        fn deserialize_ignored_any<V: Visitor<'de>>(
            self,
            visitor: V,
        ) -> Result<V::Value, Self::Error>;
    }

    /// Receives whatever shape the deserializer produced.
    pub trait Visitor<'de>: Sized {
        /// Produced value.
        type Value;

        /// Describes what this visitor expects, for error messages.
        fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

        /// Receives a `bool`.
        fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
            let _ = v;
            Err(Error::custom(format_args!("unexpected bool, expected {}", Expected(&self))))
        }
        /// Receives an `i8`.
        fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
            self.visit_i64(v as i64)
        }
        /// Receives an `i16`.
        fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
            self.visit_i64(v as i64)
        }
        /// Receives an `i32`.
        fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
            self.visit_i64(v as i64)
        }
        /// Receives an `i64`.
        fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
            let _ = v;
            Err(Error::custom(format_args!("unexpected i64, expected {}", Expected(&self))))
        }
        /// Receives a `u8`.
        fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
            self.visit_u64(v as u64)
        }
        /// Receives a `u16`.
        fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
            self.visit_u64(v as u64)
        }
        /// Receives a `u32`.
        fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
            self.visit_u64(v as u64)
        }
        /// Receives a `u64`.
        fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
            let _ = v;
            Err(Error::custom(format_args!("unexpected u64, expected {}", Expected(&self))))
        }
        /// Receives an `f32`.
        fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
            self.visit_f64(v as f64)
        }
        /// Receives an `f64`.
        fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
            let _ = v;
            Err(Error::custom(format_args!("unexpected f64, expected {}", Expected(&self))))
        }
        /// Receives a `char`.
        fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
            let _ = v;
            Err(Error::custom(format_args!("unexpected char, expected {}", Expected(&self))))
        }
        /// Receives a transient string slice.
        fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
            let _ = v;
            Err(Error::custom(format_args!("unexpected str, expected {}", Expected(&self))))
        }
        /// Receives a string borrowed from the input.
        fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
            self.visit_str(v)
        }
        /// Receives an owned string.
        fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
            self.visit_str(&v)
        }
        /// Receives transient bytes.
        fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
            let _ = v;
            Err(Error::custom(format_args!("unexpected bytes, expected {}", Expected(&self))))
        }
        /// Receives bytes borrowed from the input.
        fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
            self.visit_bytes(v)
        }
        /// Receives an owned byte buffer.
        fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
            self.visit_bytes(&v)
        }
        /// Receives `None`.
        fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
            Err(Error::custom(format_args!("unexpected None, expected {}", Expected(&self))))
        }
        /// Receives `Some`, with the inner deserializer.
        fn visit_some<D: Deserializer<'de>>(
            self,
            deserializer: D,
        ) -> Result<Self::Value, D::Error> {
            let _ = deserializer;
            Err(Error::custom(format_args!("unexpected Some, expected {}", Expected(&self))))
        }
        /// Receives `()`.
        fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
            Err(Error::custom(format_args!("unexpected unit, expected {}", Expected(&self))))
        }
        /// Receives a newtype struct's inner deserializer.
        fn visit_newtype_struct<D: Deserializer<'de>>(
            self,
            deserializer: D,
        ) -> Result<Self::Value, D::Error> {
            let _ = deserializer;
            Err(Error::custom(format_args!("unexpected newtype, expected {}", Expected(&self))))
        }
        /// Receives a sequence.
        fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
            let _ = seq;
            Err(Error::custom(format_args!("unexpected seq, expected {}", Expected(&self))))
        }
        /// Receives a map.
        fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
            let _ = map;
            Err(Error::custom(format_args!("unexpected map, expected {}", Expected(&self))))
        }
        /// Receives an enum.
        fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
            let _ = data;
            Err(Error::custom(format_args!("unexpected enum, expected {}", Expected(&self))))
        }
    }

    /// Adapter rendering a visitor's `expecting` output.
    struct Expected<'a, V>(&'a V);

    impl<'de, V: Visitor<'de>> fmt::Display for Expected<'_, V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.expecting(f)
        }
    }

    /// Access to sequence elements.
    pub trait SeqAccess<'de> {
        /// Error type.
        type Error: Error;
        /// Deserializes the next element through a seed.
        fn next_element_seed<T: DeserializeSeed<'de>>(
            &mut self,
            seed: T,
        ) -> Result<Option<T::Value>, Self::Error>;
        /// Deserializes the next element.
        fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
            self.next_element_seed(PhantomData)
        }
        /// Remaining elements, if known.
        fn size_hint(&self) -> Option<usize> {
            None
        }
    }

    /// Access to map entries.
    pub trait MapAccess<'de> {
        /// Error type.
        type Error: Error;
        /// Deserializes the next key through a seed.
        fn next_key_seed<K: DeserializeSeed<'de>>(
            &mut self,
            seed: K,
        ) -> Result<Option<K::Value>, Self::Error>;
        /// Deserializes the next value through a seed.
        fn next_value_seed<V: DeserializeSeed<'de>>(
            &mut self,
            seed: V,
        ) -> Result<V::Value, Self::Error>;
        /// Deserializes the next key.
        fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
            self.next_key_seed(PhantomData)
        }
        /// Deserializes the next value.
        fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
            self.next_value_seed(PhantomData)
        }
        /// Remaining entries, if known.
        fn size_hint(&self) -> Option<usize> {
            None
        }
    }

    /// Access to an enum: first the variant tag, then its content.
    pub trait EnumAccess<'de>: Sized {
        /// Error type.
        type Error: Error;
        /// Content accessor produced alongside the tag.
        type Variant: VariantAccess<'de, Error = Self::Error>;
        /// Deserializes the variant tag through a seed.
        fn variant_seed<V: DeserializeSeed<'de>>(
            self,
            seed: V,
        ) -> Result<(V::Value, Self::Variant), Self::Error>;
        /// Deserializes the variant tag.
        fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
            self.variant_seed(PhantomData)
        }
    }

    /// Access to one enum variant's content.
    pub trait VariantAccess<'de>: Sized {
        /// Error type.
        type Error: Error;
        /// The variant carries no data.
        fn unit_variant(self) -> Result<(), Self::Error>;
        /// The variant carries one value, via a seed.
        fn newtype_variant_seed<T: DeserializeSeed<'de>>(
            self,
            seed: T,
        ) -> Result<T::Value, Self::Error>;
        /// The variant carries one value.
        fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
            self.newtype_variant_seed(PhantomData)
        }
        /// The variant carries a tuple.
        fn tuple_variant<V: Visitor<'de>>(
            self,
            len: usize,
            visitor: V,
        ) -> Result<V::Value, Self::Error>;
        /// The variant carries named fields.
        fn struct_variant<V: Visitor<'de>>(
            self,
            fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, Self::Error>;
    }

    /// Conversion into a deserializer over a primitive already in hand
    /// (used for enum variant indexes).
    pub trait IntoDeserializer<'de, E: Error> {
        /// The produced deserializer.
        type Deserializer: Deserializer<'de, Error = E>;
        /// Performs the conversion.
        fn into_deserializer(self) -> Self::Deserializer;
    }

    /// Deserializer over a `u32` already in hand.
    pub struct U32Deserializer<E> {
        value: u32,
        marker: PhantomData<E>,
    }

    impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
        type Deserializer = U32Deserializer<E>;
        fn into_deserializer(self) -> U32Deserializer<E> {
            U32Deserializer { value: self, marker: PhantomData }
        }
    }

    macro_rules! forward_to_visit_u32 {
        ($($method:ident)*) => {
            $(
                fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                    visitor.visit_u32(self.value)
                }
            )*
        };
    }

    impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
        type Error = E;

        forward_to_visit_u32! {
            deserialize_any deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64
            deserialize_i8 deserialize_i16 deserialize_i32 deserialize_i64
            deserialize_identifier deserialize_ignored_any
        }

        fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_unit_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_newtype_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_tuple<V: Visitor<'de>>(
            self,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_tuple_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_enum<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
    }
}

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_scalar {
    ($($ty:ty => $method:ident),* $(,)?) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.$method(*self)
                }
            }
        )*
    };
}

impl_serialize_scalar! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => serializer.serialize_some(value),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeSeq;
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for element in self {
            seq.serialize_element(element)?;
        }
        seq.end()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeTuple;
        let mut tuple = serializer.serialize_tuple(N)?;
        for element in self {
            tuple.serialize_element(element)?;
        }
        tuple.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeMap;
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_key(key)?;
            map.serialize_value(value)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeMap;
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_key(key)?;
            map.serialize_value(value)?;
        }
        map.end()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeSeq;
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for element in self {
            seq.serialize_element(element)?;
        }
        seq.end()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    use ser::SerializeTuple;
                    let mut tuple = serializer.serialize_tuple(impl_serialize_tuple!(@count $($name)+))?;
                    $(tuple.serialize_element(&self.$idx)?;)+
                    tuple.end()
                }
            }
        )*
    };
    (@count $($name:ident)+) => { [$(impl_serialize_tuple!(@one $name)),+].len() };
    (@one $name:ident) => { () };
}

impl_serialize_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7)
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! impl_deserialize_scalar {
    ($($ty:ty => $method:ident, $visit:ident, $expect:literal);* $(;)?) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct V;
                    impl<'de> de::Visitor<'de> for V {
                        type Value = $ty;
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str($expect)
                        }
                        fn $visit<E: de::Error>(self, v: $ty) -> Result<$ty, E> {
                            Ok(v)
                        }
                    }
                    deserializer.$method(V)
                }
            }
        )*
    };
}

impl_deserialize_scalar! {
    bool => deserialize_bool, visit_bool, "a bool";
    i8 => deserialize_i8, visit_i8, "an i8";
    i16 => deserialize_i16, visit_i16, "an i16";
    i32 => deserialize_i32, visit_i32, "an i32";
    i64 => deserialize_i64, visit_i64, "an i64";
    u8 => deserialize_u8, visit_u8, "a u8";
    u16 => deserialize_u16, visit_u16, "a u16";
    u32 => deserialize_u32, visit_u32, "a u32";
    u64 => deserialize_u64, visit_u64, "a u64";
    f32 => deserialize_f32, visit_f32, "an f32";
    f64 => deserialize_f64, visit_f64, "an f64";
    char => deserialize_char, visit_char, "a char";
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = usize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a usize")
            }
            fn visit_u64<E: de::Error>(self, v: u64) -> Result<usize, E> {
                usize::try_from(v).map_err(|_| E::custom("usize overflow"))
            }
        }
        deserializer.deserialize_u64(V)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = isize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an isize")
            }
            fn visit_i64<E: de::Error>(self, v: i64) -> Result<isize, E> {
                isize::try_from(v).map_err(|_| E::custom("isize overflow"))
            }
        }
        deserializer.deserialize_i64(V)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: de::Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: de::Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use std::marker::PhantomData;
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> de::Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: de::Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Option<T>, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use std::marker::PhantomData;
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> de::Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: de::SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4_096));
                while let Some(element) = seq.next_element()? {
                    out.push(element);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use std::marker::PhantomData;
        struct V<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> de::Visitor<'de> for V<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: de::SeqAccess<'de>>(self, mut seq: A) -> Result<[T; N], A::Error> {
                let mut out = Vec::with_capacity(N);
                for i in 0..N {
                    match seq.next_element()? {
                        Some(element) => out.push(element),
                        None => return Err(de::Error::invalid_length(i, &"array")),
                    }
                }
                out.try_into().map_err(|_| de::Error::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, V::<T, N>(PhantomData))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use std::marker::PhantomData;
        struct Vis<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> de::Visitor<'de> for Vis<K, V> {
            type Value = std::collections::BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: de::MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some(key) = map.next_key()? {
                    let value = map.next_value()?;
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<'de, K, V, S> Deserialize<'de> for std::collections::HashMap<K, V, S>
where
    K: Deserialize<'de> + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use std::marker::PhantomData;
        struct Vis<K, V, S>(PhantomData<(K, V, S)>);
        impl<'de, K, V, S> de::Visitor<'de> for Vis<K, V, S>
        where
            K: Deserialize<'de> + std::hash::Hash + Eq,
            V: Deserialize<'de>,
            S: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V, S>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: de::MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashMap::with_hasher(S::default());
                while let Some(key) = map.next_key()? {
                    let value = map.next_value()?;
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use std::marker::PhantomData;
        struct Vis<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de> + Ord> de::Visitor<'de> for Vis<T> {
            type Value = std::collections::BTreeSet<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a set")
            }
            fn visit_seq<A: de::SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeSet::new();
                while let Some(element) = seq.next_element()? {
                    out.insert(element);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(Vis(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($($name:ident),+))*) => {
        $(
            impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
                fn deserialize<Des: Deserializer<'de>>(deserializer: Des) -> Result<Self, Des::Error> {
                    use std::marker::PhantomData;
                    struct V<$($name),+>(PhantomData<($($name,)+)>);
                    impl<'de, $($name: Deserialize<'de>),+> de::Visitor<'de> for V<$($name),+> {
                        type Value = ($($name,)+);
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str("a tuple")
                        }
                        #[allow(non_snake_case)]
                        fn visit_seq<Acc: de::SeqAccess<'de>>(
                            self,
                            mut seq: Acc,
                        ) -> Result<Self::Value, Acc::Error> {
                            let mut index = 0usize;
                            $(
                                let $name = match seq.next_element()? {
                                    Some(value) => value,
                                    None => return Err(de::Error::invalid_length(index, &"tuple")),
                                };
                                index += 1;
                            )+
                            let _ = index;
                            Ok(($($name,)+))
                        }
                    }
                    let len = impl_deserialize_tuple!(@count $($name)+);
                    deserializer.deserialize_tuple(len, V(PhantomData))
                }
            }
        )*
    };
    (@count $($name:ident)+) => { [$(impl_deserialize_tuple!(@one $name)),+].len() };
    (@one $name:ident) => { () };
}

impl_deserialize_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}
