//! The `Strategy` trait and the combinators the workspace's tests use.

use crate::test_runner::TestRunner;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking tree: a strategy just produces
/// fresh values from the runner's deterministic RNG.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Generates one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// A strategy filtering generated values; generation retries (bounded)
    /// until `f` accepts.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { source: self, whence, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).new_value(runner)
    }
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// Builds that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Whole-domain strategy for scalars and tuples of scalars.
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

impl<T: AnySample> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::sample_any(runner)
    }
}

/// Direct whole-domain sampling, backing [`Any`].
pub trait AnySample: Sized {
    /// Draws one value covering the type's whole domain.
    fn sample_any(runner: &mut TestRunner) -> Self;
}

/// Emits `Arbitrary` for a concrete type, routing through [`Any`]. (A
/// blanket impl over `AnySample` would conflict with `Arbitrary` impls for
/// non-scalar types like `sample::Index`.)
macro_rules! impl_arbitrary_via_any {
    ($($ty:ty),+) => {
        $(
            impl Arbitrary for $ty {
                type Strategy = Any<$ty>;
                fn arbitrary() -> Any<$ty> {
                    Any(PhantomData)
                }
            }
        )+
    };
}

impl_arbitrary_via_any!(bool, f32, f64, char);

macro_rules! impl_any_int {
    ($($ty:ty),*) => {
        $(
            impl AnySample for $ty {
                fn sample_any(runner: &mut TestRunner) -> $ty {
                    runner.next_u64() as $ty
                }
            }

            impl_arbitrary_via_any!($ty);
        )*
    };
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl AnySample for bool {
    fn sample_any(runner: &mut TestRunner) -> bool {
        runner.next_u64() & 1 == 1
    }
}

impl AnySample for f64 {
    fn sample_any(runner: &mut TestRunner) -> f64 {
        // Arbitrary bit patterns: exercises NaN, infinities, subnormals.
        f64::from_bits(runner.next_u64())
    }
}

impl AnySample for f32 {
    fn sample_any(runner: &mut TestRunner) -> f32 {
        f32::from_bits(runner.next_u64() as u32)
    }
}

impl AnySample for char {
    fn sample_any(runner: &mut TestRunner) -> char {
        loop {
            let candidate = (runner.next_u64() % 0x11_0000) as u32;
            if let Some(c) = char::from_u32(candidate) {
                return c;
            }
        }
    }
}

macro_rules! impl_any_tuple {
    ($(($($name:ident),+))*) => {
        $(
            impl<$($name: AnySample),+> AnySample for ($($name,)+) {
                #[allow(non_snake_case)]
                fn sample_any(runner: &mut TestRunner) -> Self {
                    $(let $name = $name::sample_any(runner);)+
                    ($($name,)+)
                }
            }

            impl<$($name: AnySample),+> Arbitrary for ($($name,)+) {
                type Strategy = Any<($($name,)+)>;
                fn arbitrary() -> Self::Strategy {
                    Any(PhantomData)
                }
            }
        )*
    };
}

impl_any_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

macro_rules! impl_strategy_range_int {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn new_value(&self, runner: &mut TestRunner) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + runner.below(span) as i128) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn new_value(&self, runner: &mut TestRunner) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return runner.next_u64() as $ty;
                    }
                    (lo as i128 + runner.below(span + 1) as i128) as $ty
                }
            }
        )*
    };
}

impl_strategy_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, runner: &mut TestRunner) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + runner.unit_f64() * (self.end - self.start);
        v.min(self.end - (self.end - self.start) * f64::EPSILON)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, runner: &mut TestRunner) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (runner.unit_f64() as f32) * (self.end - self.start);
        v.min(self.end - (self.end - self.start) * f32::EPSILON)
    }
}

// ---------------------------------------------------------------------------
// String strategies from pattern literals
// ---------------------------------------------------------------------------

/// One atom of the supported pattern dialect.
enum Atom {
    /// `.` — any char except newline.
    AnyChar,
    /// `[a-z0-9]`-style class, expanded to its members.
    Class(Vec<char>),
    /// A literal character.
    Literal(char),
}

/// A parsed pattern: atoms with `{m,n}` repetition counts.
struct Pattern {
    parts: Vec<(Atom, usize, usize)>,
}

fn parse_pattern(pattern: &str) -> Pattern {
    let mut chars = pattern.chars().peekable();
    let mut parts = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::AnyChar,
            '[' => {
                let mut members = Vec::new();
                let mut prev: Option<char> = None;
                for m in chars.by_ref() {
                    match m {
                        ']' => break,
                        '-' if prev.is_some() => {
                            // Range end comes next; mark with a sentinel.
                            members.push('\u{0}');
                        }
                        other => {
                            if members.last() == Some(&'\u{0}') {
                                members.pop();
                                let start = prev.expect("range start");
                                for code in (start as u32 + 1)..=(other as u32) {
                                    if let Some(ch) = char::from_u32(code) {
                                        members.push(ch);
                                    }
                                }
                            } else {
                                members.push(other);
                            }
                            prev = Some(other);
                        }
                    }
                }
                Atom::Class(members)
            }
            '\\' => Atom::Literal(chars.next().unwrap_or('\\')),
            other => Atom::Literal(other),
        };
        // Optional {m,n} / {n} repetition.
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for d in chars.by_ref() {
                if d == '}' {
                    break;
                }
                spec.push(d);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().unwrap_or(0),
                    n.trim().parse().unwrap_or_else(|_| m.trim().parse().unwrap_or(0)),
                ),
                None => {
                    let n = spec.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        parts.push((atom, lo, hi));
    }
    Pattern { parts }
}

fn sample_any_char(runner: &mut TestRunner) -> char {
    // Mostly printable ASCII, sometimes arbitrary unicode, never newline.
    if runner.below(5) < 4 {
        char::from_u32(0x20 + runner.below(0x5F) as u32).expect("printable ascii")
    } else {
        loop {
            let candidate = (runner.next_u64() % 0x11_0000) as u32;
            match char::from_u32(candidate) {
                Some('\n') | None => continue,
                Some(c) => return c,
            }
        }
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, runner: &mut TestRunner) -> String {
        let pattern = parse_pattern(self);
        let mut out = String::new();
        for (atom, lo, hi) in &pattern.parts {
            let count =
                if lo == hi { *lo } else { *lo + runner.below((hi - lo + 1) as u64) as usize };
            for _ in 0..count {
                match atom {
                    Atom::AnyChar => out.push(sample_any_char(runner)),
                    Atom::Class(members) => {
                        assert!(!members.is_empty(), "empty character class");
                        out.push(members[runner.below(members.len() as u64) as usize]);
                    }
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// A constant strategy.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.source.new_value(runner))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..1_000 {
            let candidate = self.source.new_value(runner);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter '{}' rejected 1000 consecutive values", self.whence);
    }
}

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union { options }
    }

    /// Boxes a strategy for storage in a union.
    pub fn boxed<S: Strategy<Value = V> + 'static>(strategy: S) -> Box<dyn Strategy<Value = V>> {
        Box::new(strategy)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, runner: &mut TestRunner) -> V {
        let pick = runner.below(self.options.len() as u64) as usize;
        self.options[pick].new_value(runner)
    }
}

/// See [`crate::prop::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let len = self.size.clone().new_value(runner);
        (0..len).map(|_| self.element.new_value(runner)).collect()
    }
}

/// See [`crate::prop::collection::btree_map`].
pub struct BTreeMapStrategy<K, V> {
    pub(crate) key: K,
    pub(crate) value: V,
    pub(crate) size: Range<usize>,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn new_value(&self, runner: &mut TestRunner) -> BTreeMap<K::Value, V::Value> {
        let len = self.size.clone().new_value(runner);
        // Duplicate keys collapse, mirroring real proptest's behavior of
        // yielding maps up to (not exactly) the requested size.
        (0..len).map(|_| (self.key.new_value(runner), self.value.new_value(runner))).collect()
    }
}

/// See [`crate::prop::option::of`].
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn new_value(&self, runner: &mut TestRunner) -> Option<S::Value> {
        if runner.below(4) == 0 {
            None
        } else {
            Some(self.inner.new_value(runner))
        }
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.new_value(runner),)+)
                }
            }
        )*
    };
}

impl_strategy_tuple! {
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::{ProptestConfig, TestRunner};

    fn runner() -> TestRunner {
        TestRunner::new(&ProptestConfig::default(), "strategy-unit")
    }

    #[test]
    fn pattern_literals_generate_matching_strings() {
        let mut r = runner();
        for _ in 0..200 {
            let s = "[a-d]{1,3}".new_value(&mut r);
            assert!((1..=3).contains(&s.chars().count()));
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)));

            let t = ".{0,16}".new_value(&mut r);
            assert!(t.chars().count() <= 16);
        }
    }

    #[test]
    fn ranges_and_tuples_compose() {
        let mut r = runner();
        for _ in 0..200 {
            let (a, b) = (0u64..10, 5usize..6).new_value(&mut r);
            assert!(a < 10);
            assert_eq!(b, 5);
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut r = runner();
        let u = Union::new(vec![Union::boxed(Just(1u8)), Union::boxed(Just(2u8))]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.new_value(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
