//! Offline stand-in for `proptest`.
//!
//! Implements deterministic random-input testing with the strategy surface
//! this workspace's property tests use: `any::<T>()` for scalars/tuples and
//! `sample::Index`, range strategies, string strategies from a micro regex
//! dialect (`.`, `[a-z]` classes, `{m,n}` repetition), tuples of strategies,
//! `prop_map`, `prop_oneof!`, `Just`, `prop::collection::{vec, btree_map}`,
//! `prop::option::of`, `prop::num::f64` classes, and the `proptest!` /
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: cases are generated from a fixed seed
//! (fully deterministic across runs), and failing inputs are reported but
//! not shrunk.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod prop {
    //! Namespaced strategy constructors (`prop::collection::vec(...)` etc.).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::{BTreeMapStrategy, Strategy, VecStrategy};
        use std::ops::Range;

        /// A `Vec` of values from `element`, with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// A `BTreeMap` with keys/values from the given strategies.
        pub fn btree_map<K: Strategy, V: Strategy>(
            key: K,
            value: V,
            size: Range<usize>,
        ) -> BTreeMapStrategy<K, V>
        where
            K::Value: Ord,
        {
            BTreeMapStrategy { key, value, size }
        }
    }

    pub mod option {
        //! `Option` strategies.

        use crate::strategy::{OptionStrategy, Strategy};

        /// `Some` of the inner strategy three times out of four, else `None`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }

    pub mod sample {
        //! Sampling helper types.

        use crate::strategy::{Arbitrary, Strategy};
        use crate::test_runner::TestRunner;

        /// An abstract index, resolved against a concrete collection later.
        #[derive(Debug, Clone, Copy)]
        pub struct Index {
            raw: usize,
        }

        impl Index {
            /// This index resolved to `0..size`.
            ///
            /// # Panics
            ///
            /// Panics if `size` is zero.
            pub fn index(&self, size: usize) -> usize {
                assert!(size > 0, "cannot index an empty collection");
                self.raw % size
            }

            /// A reference to the element this index selects in `slice`.
            ///
            /// # Panics
            ///
            /// Panics if `slice` is empty.
            pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
                &slice[self.index(slice.len())]
            }
        }

        /// Strategy producing [`Index`] values.
        #[derive(Debug, Clone, Copy)]
        pub struct IndexStrategy;

        impl Strategy for IndexStrategy {
            type Value = Index;
            fn new_value(&self, runner: &mut TestRunner) -> Index {
                Index { raw: runner.next_u64() as usize }
            }
        }

        impl Arbitrary for Index {
            type Strategy = IndexStrategy;
            fn arbitrary() -> IndexStrategy {
                IndexStrategy
            }
        }
    }

    pub mod num {
        //! Numeric class strategies.

        pub mod f64 {
            //! `f64` classes, combinable with `|`.

            use crate::strategy::Strategy;
            use crate::test_runner::TestRunner;
            use std::ops::BitOr;

            const BIT_NORMAL: u8 = 1;
            const BIT_ZERO: u8 = 2;

            /// A union of `f64` value classes.
            #[derive(Debug, Clone, Copy)]
            pub struct FloatClass(u8);

            /// Normal (non-zero, non-subnormal, finite) floats of either sign.
            pub const NORMAL: FloatClass = FloatClass(BIT_NORMAL);
            /// Positive and negative zero.
            pub const ZERO: FloatClass = FloatClass(BIT_ZERO);

            impl BitOr for FloatClass {
                type Output = FloatClass;
                fn bitor(self, other: FloatClass) -> FloatClass {
                    FloatClass(self.0 | other.0)
                }
            }

            impl Strategy for FloatClass {
                type Value = f64;
                fn new_value(&self, runner: &mut TestRunner) -> f64 {
                    let classes: Vec<u8> = [BIT_NORMAL, BIT_ZERO]
                        .into_iter()
                        .filter(|bit| self.0 & bit != 0)
                        .collect();
                    assert!(!classes.is_empty(), "empty float class");
                    match classes[runner.below(classes.len() as u64) as usize] {
                        BIT_ZERO => {
                            if runner.next_u64() & 1 == 0 {
                                0.0
                            } else {
                                -0.0
                            }
                        }
                        _ => loop {
                            let candidate = f64::from_bits(runner.next_u64());
                            if candidate.is_normal() {
                                return candidate;
                            }
                        },
                    }
                }
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude::*`.

    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            @config($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config($config:expr)) => {};
    (@config($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut runner = $crate::test_runner::TestRunner::new(&config, stringify!($name));
            let mut executed: u32 = 0;
            let mut rejected: u32 = 0;
            while executed < config.cases {
                // Bounded rejection budget so a too-strict prop_assume!
                // fails loudly instead of spinning.
                if rejected > config.cases * 16 + 256 {
                    panic!(
                        "proptest '{}': too many rejected cases ({} accepted, {} rejected)",
                        stringify!($name), executed, rejected,
                    );
                }
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut runner);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => executed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}",
                            stringify!($name), executed, msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ @config($config) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right,
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left,
        );
    }};
}

/// Discards the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

/// A strategy choosing uniformly among the given strategies (which must
/// share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Union::boxed($strat)),+
        ])
    };
}
