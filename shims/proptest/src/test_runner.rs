//! Test execution state: configuration, the per-test RNG, and case errors.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run per test.
    pub cases: u32,
    /// Unused; kept for struct-update compatibility with real proptest.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the input; try another.
    Reject(&'static str),
    /// A `prop_assert*` failed.
    Fail(String),
}

/// Drives value generation for one property test.
///
/// Seeded from the test's name so every test draws an independent but fully
/// deterministic stream — failures reproduce on every run.
#[derive(Debug)]
pub struct TestRunner {
    rng: SmallRng,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(_config: &ProptestConfig, test_name: &str) -> Self {
        let mut seed = 0xCBF2_9CE4_8422_2325u64;
        for byte in test_name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner { rng: SmallRng::seed_from_u64(seed) }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        use rand::Rng;
        self.rng.gen_range(0..bound)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        use rand::Rng;
        self.rng.gen::<f64>()
    }
}
