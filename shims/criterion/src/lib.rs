//! Offline stand-in for `criterion`.
//!
//! Mirrors the API shape the bench targets use (`criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `Throughput`,
//! `BenchmarkId`, `Bencher::iter`) with a simple wall-clock median-of-samples
//! measurement instead of criterion's statistical machinery. When run
//! without `--bench` in the arguments (i.e. under `cargo test`), each
//! benchmark body executes once as a smoke test so the harness stays fast.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement throughput annotation, echoed in reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// An id from just a parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries with `--bench`; anything else (cargo
        // test, direct execution) gets the fast smoke mode.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { measure }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), criterion: self, sample_size: 30 }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut body: F) {
        let mut bencher = Bencher { measure: self.measure, sample_size: 30, report: None };
        body(&mut bencher);
        print_report(name, bencher.report);
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Records the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(&mut self, id: I, mut body: F) {
        let mut bencher = Bencher {
            measure: self.criterion.measure,
            sample_size: self.sample_size,
            report: None,
        };
        body(&mut bencher);
        print_report(&format!("{}/{}", self.name, id), bencher.report);
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: fmt::Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut body: F,
    ) {
        let mut bencher = Bencher {
            measure: self.criterion.measure,
            sample_size: self.sample_size,
            report: None,
        };
        body(&mut bencher, input);
        print_report(&format!("{}/{}", self.name, id), bencher.report);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn print_report(label: &str, report: Option<Duration>) {
    match report {
        Some(per_iter) => println!("bench: {label:<60} {per_iter:>12.2?}/iter"),
        None => println!("bench: {label:<60} smoke-tested"),
    }
}

/// Times a closure over many iterations.
pub struct Bencher {
    measure: bool,
    sample_size: usize,
    report: Option<Duration>,
}

impl Bencher {
    /// Measures `routine`, keeping its return value alive so the optimizer
    /// cannot delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.measure {
            std::hint::black_box(routine());
            return;
        }
        // Calibrate: grow the iteration count until one sample takes ≥2ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 30 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        // Sample and report the median.
        let mut samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(routine());
                }
                start.elapsed() / iters.max(1) as u32
            })
            .collect();
        samples.sort();
        self.report = Some(samples[samples.len() / 2]);
    }
}

/// Re-export of the standard black box, criterion-style.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
