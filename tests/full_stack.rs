//! Workspace-level integration tests: the complete stack (ds-sim → ds-net →
//! comsim → opc/msgq/plant → oftt → harness) driven through its public API.

use ds_net::fault::Fault;
use ds_sim::prelude::{SimDuration, SimTime};
use oftt::config::engine_service;
use oftt_harness::scenario::{Fig3Scenario, ScenarioParams, APP_SERVICE};
use oftt_harness::scenario_fig1::{Fig1Scenario, ReferenceConfig};

/// The paper's full §4 demonstration as one run: all four failure classes
/// in sequence, with repairs in between, accounting at the end.
#[test]
fn demo_sequence_survives_all_four_failure_classes() {
    let params = ScenarioParams { seed: 9000, ..Default::default() };
    let mut scenario = Fig3Scenario::build(&params);
    scenario.start();

    // (a) node failure at t=60, repaired at t=120.
    scenario.run_until(SimTime::from_secs(60));
    let p = scenario.primary_node().expect("formed");
    scenario.inject(SimTime::from_secs(60), Fault::CrashNode(p));
    scenario.inject(SimTime::from_secs(120), Fault::RepairNode(p));

    // (b) NT crash at t=180.
    scenario.run_until(SimTime::from_secs(180));
    let p = scenario.primary_node().expect("reformed after repair");
    scenario.inject(SimTime::from_secs(180), Fault::RebootNode(p));

    // (c) application failure at t=280.
    scenario.run_until(SimTime::from_secs(280));
    let p = scenario.primary_node().expect("reformed after reboot");
    scenario.inject(SimTime::from_secs(280), Fault::KillService(p, APP_SERVICE.into()));

    // (d) middleware failure at t=360.
    scenario.run_until(SimTime::from_secs(360));
    let p = scenario.primary_node().expect("healthy before class d");
    scenario.inject(SimTime::from_secs(360), Fault::KillService(p, engine_service()));

    // Drain and account.
    scenario.stop_feed(SimTime::from_secs(420));
    scenario.run_until(SimTime::from_secs(460));

    let (_, state) = scenario.active_state().expect("an active Call Track at the end");
    let emitted = scenario.emitted();
    assert!(emitted > 100, "busy enough run: {emitted}");
    let lost = emitted as i64 - state.events as i64;
    assert!(
        lost >= 0 && (lost as f64) < 0.2 * emitted as f64,
        "bounded loss across four failures: lost {lost} of {emitted}"
    );
    // Call accounting is internally consistent after every restore.
    assert_eq!(state.started, state.ended + state.busy_count() as u64);
    // The monitor converged to exactly one primary.
    assert_eq!(scenario.probes.monitor.lock().primaries().len(), 1);
}

/// The same seed reproduces the same end state, even across a multi-fault
/// campaign — the determinism contract that makes EXPERIMENTS.md
/// reproducible.
#[test]
fn multi_fault_campaign_is_deterministic() {
    let run = |seed: u64| {
        let params = ScenarioParams { seed, ..Default::default() };
        let mut scenario = Fig3Scenario::build(&params);
        scenario.start();
        scenario.run_until(SimTime::from_secs(60));
        if let Some(p) = scenario.primary_node() {
            scenario.inject(SimTime::from_secs(60), Fault::CrashNode(p));
        }
        scenario.run_until(SimTime::from_secs(120));
        format!("{:?}", scenario.active_state())
    };
    assert_eq!(run(9100), run(9100));
    assert_ne!(run(9100), run(9101));
}

/// Fig. 1a: losing one Ethernet path of the dual link is invisible to the
/// application layer.
#[test]
fn dual_ethernet_path_failure_is_transparent() {
    let mut scenario = Fig1Scenario::build(ReferenceConfig::ControlWithRemoteMonitoring, 9200);
    scenario.start();
    scenario.run_until(SimTime::from_secs(40));
    let before = scenario.active_tagmon().expect("active").1.total_samples;
    // Fail path 0 of the pair interconnects.
    let (sa, sb) = (scenario.server_pair.a, scenario.server_pair.b);
    scenario.inject(SimTime::from_secs(40), Fault::PathDown(sa, sb, 0));
    let (ca, cb) = (scenario.client_pair.a, scenario.client_pair.b);
    scenario.inject(SimTime::from_secs(40), Fault::PathDown(ca, cb, 0));
    scenario.run_until(SimTime::from_secs(100));
    let after = scenario.active_tagmon().expect("still active").1.total_samples;
    assert!(after > before + 50, "monitoring unaffected: {before} -> {after}");
    // No spurious switchover happened on either pair.
    assert!(scenario.server_primary().is_some());
    assert!(scenario.client_primary().is_some());
}

/// The integrated configuration (Fig. 1b) rides through an NT crash of its
/// primary, which takes down BOTH the OPC server and the Tag Monitor on
/// that node at once.
#[test]
fn integrated_config_survives_combined_crash() {
    let mut scenario = Fig1Scenario::build(ReferenceConfig::IntegratedMonitoringAndControl, 9300);
    scenario.start();
    scenario.run_until(SimTime::from_secs(60));
    let before = scenario.active_tagmon().expect("active").1.total_samples;
    let p = scenario.server_primary().expect("formed");
    scenario.inject(SimTime::from_secs(60), Fault::RebootNode(p));
    scenario.run_until(SimTime::from_secs(180));
    let (node, state) = scenario.active_tagmon().expect("active after combined failover");
    assert_ne!(node, p, "the surviving node carries the monitoring function");
    assert!(state.total_samples > before, "statistics kept growing");
    // The rebooted node rejoined; both engines are running again.
    assert!(scenario.cs.cluster().node(p).status.is_up());
    assert!(scenario.cs.cluster().is_service_running(p, &engine_service()));
}

/// The System Monitor display renders both healthy and degraded states
/// without panicking, and tracks the primary through a switchover.
#[test]
fn monitor_display_tracks_switchover() {
    let params = ScenarioParams { seed: 9400, ..Default::default() };
    let mut scenario = Fig3Scenario::build(&params);
    scenario.start();
    scenario.run_until(SimTime::from_secs(30));
    let first = scenario.probes.monitor.lock().primaries();
    assert_eq!(first.len(), 1);
    let text = scenario.probes.monitor.lock().render(scenario.cs.now());
    assert!(text.contains("primary") && text.contains("backup"), "{text}");

    scenario.inject(SimTime::from_secs(30), Fault::CrashNode(first[0]));
    scenario.run_until(SimTime::from_secs(60));
    let second = scenario.probes.monitor.lock().primaries();
    assert_eq!(second.len(), 1);
    assert_ne!(first[0], second[0], "monitor followed the switchover");
    let text = scenario.probes.monitor.lock().render(scenario.cs.now());
    assert!(text.contains("NOT REPORTING"), "dead node flagged:\n{text}");
}

/// Checkpoint traffic responds to the configured period — halving the
/// period roughly doubles the checkpoints shipped.
#[test]
fn checkpoint_period_scales_traffic() {
    let count_ckpts = |period_ms: u64| {
        let params = ScenarioParams {
            seed: 9500,
            tune: std::sync::Arc::new(move |c: &mut oftt::OfttConfig| {
                c.checkpoint_period = SimDuration::from_millis(period_ms);
                // Full mode ships every period; the default selective mode
                // skips empty deltas, so its count tracks the event rate
                // rather than the period.
                c.checkpoint_mode = oftt::config::CheckpointMode::Full;
            }),
            ..Default::default()
        };
        let mut scenario = Fig3Scenario::build(&params);
        scenario.start();
        scenario.run_until(SimTime::from_secs(120));
        let a = scenario.probes.ftims[0].lock().ckpts_sent;
        let b = scenario.probes.ftims[1].lock().ckpts_sent;
        a + b
    };
    let slow = count_ckpts(2000);
    let fast = count_ckpts(500);
    assert!(
        fast > slow * 2,
        "500 ms period ({fast}) should ship >2x the checkpoints of 2 s ({slow})"
    );
}
