//! Property-based safety tests over random fault schedules: whatever
//! sequence of node crashes, reboots, process kills, and partitions is
//! thrown at the pair, once faults stop and connectivity is restored the
//! system converges to exactly one active application, never duplicates
//! meaningfully, and keeps its accounting invariants.

use ds_net::fault::Fault;
use ds_sim::prelude::SimTime;
use oftt::config::engine_service;
use oftt_harness::scenario::{Fig3Scenario, ScenarioParams, APP_SERVICE};
use proptest::prelude::*;

/// The fault menu exercised by the schedules.
#[derive(Debug, Clone, Copy)]
enum FaultChoice {
    CrashA,
    CrashB,
    RebootA,
    RebootB,
    KillAppOnPrimary,
    KillEngineOnPrimary,
    Partition,
    Heal,
}

fn fault_choice() -> impl Strategy<Value = FaultChoice> {
    prop_oneof![
        Just(FaultChoice::CrashA),
        Just(FaultChoice::CrashB),
        Just(FaultChoice::RebootA),
        Just(FaultChoice::RebootB),
        Just(FaultChoice::KillAppOnPrimary),
        Just(FaultChoice::KillEngineOnPrimary),
        Just(FaultChoice::Partition),
        Just(FaultChoice::Heal),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn random_fault_schedules_converge_to_one_active_app(
        seed in 0u64..10_000,
        schedule in prop::collection::vec((10u64..120, fault_choice()), 1..6),
    ) {
        let params = ScenarioParams { seed, ..Default::default() };
        let mut scenario = Fig3Scenario::build(&params);
        scenario.start();

        // Apply the schedule, stepping between faults so "primary" targets
        // resolve against live state.
        let mut schedule = schedule.clone();
        schedule.sort_by_key(|(t, _)| *t);
        for (t, choice) in schedule {
            let at = SimTime::from_secs(t);
            scenario.run_until(at);
            let (a, b) = (scenario.pair.a, scenario.pair.b);
            let fault = match choice {
                FaultChoice::CrashA => Some(Fault::CrashNode(a)),
                FaultChoice::CrashB => Some(Fault::CrashNode(b)),
                FaultChoice::RebootA => Some(Fault::RebootNode(a)),
                FaultChoice::RebootB => Some(Fault::RebootNode(b)),
                FaultChoice::KillAppOnPrimary => {
                    scenario.primary_node().map(|p| Fault::KillService(p, APP_SERVICE.into()))
                }
                FaultChoice::KillEngineOnPrimary => {
                    scenario.primary_node().map(|p| Fault::KillService(p, engine_service()))
                }
                FaultChoice::Partition => Some(Fault::Partition(a, b)),
                FaultChoice::Heal => Some(Fault::Heal(a, b)),
            };
            if let Some(fault) = fault {
                scenario.inject(at, fault);
            }
        }

        // Quiesce: repair everything, heal the pair link, stop the feed,
        // give the toolkit time to settle.
        let quiesce = SimTime::from_secs(140);
        scenario.run_until(quiesce);
        let (a, b) = (scenario.pair.a, scenario.pair.b);
        scenario.inject(quiesce, Fault::RepairNode(a));
        scenario.inject(quiesce, Fault::RepairNode(b));
        scenario.inject(quiesce, Fault::Heal(a, b));
        scenario.stop_feed(SimTime::from_secs(200));
        scenario.run_until(SimTime::from_secs(260));

        // Safety: exactly one active application copy, on an up node.
        let active_a = scenario.app_active(a);
        let active_b = scenario.app_active(b);
        prop_assert!(
            active_a ^ active_b,
            "after quiescence exactly one copy must be active (a={active_a}, b={active_b})"
        );

        // Liveness + accounting: the surviving state never invents events
        // (at-least-once retry across switchover can in principle duplicate
        // a handful; it must never exceed that).
        let (_, state) = scenario.active_state().expect("one active");
        let emitted = scenario.emitted();
        prop_assert!(
            state.events <= emitted + 5,
            "no meaningful duplication: processed {} vs emitted {emitted}",
            state.events
        );
        // Busy-line bookkeeping stays consistent through every restore —
        // provided no activation ever happened with zero restorable state
        // (both copies destroyed close together), which is documented data
        // loss: events counted before the loss can then unbalance the
        // started/ended ledger.
        let fresh = scenario.probes.ftims[0].lock().fresh_activations
            + scenario.probes.ftims[1].lock().fresh_activations;
        if fresh == 0 {
            prop_assert_eq!(state.started, state.ended + state.busy_count() as u64);
        }
        prop_assert!(state.busy_count() <= 5);
    }

    /// Determinism holds across arbitrary schedules: same seed + same
    /// schedule = same trace.
    #[test]
    fn schedules_are_reproducible(
        seed in 0u64..1_000,
        crash_at in 10u64..60,
    ) {
        let run = |seed: u64| {
            let params = ScenarioParams { seed, ..Default::default() };
            let mut scenario = Fig3Scenario::build(&params);
            scenario.start();
            scenario.run_until(SimTime::from_secs(crash_at));
            if let Some(p) = scenario.primary_node() {
                scenario.inject(SimTime::from_secs(crash_at), Fault::CrashNode(p));
            }
            scenario.run_until(SimTime::from_secs(crash_at + 60));
            format!("{:?}", scenario.active_state())
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
