#!/usr/bin/env bash
# CI gate for the OFTT reproduction.
#
# Stages:
#   1. formatting        cargo fmt --check (config in rustfmt.toml)
#   2. lints             cargo clippy, warnings are errors
#   3. tier-1            release build + the root suite's smoke tests
#   4. workspace tests   every crate's unit/integration tests
#   5. model checking    budgeted oftt-check sweep over pair failover
#   6. verify sweep      oftt-verify exhausts the abstract protocol space
#                        (pinned state count, zero violations, no lasso)
#                        and refines a 200-schedule trace-export sweep,
#                        plus the seeded-defect round-trip smoke
#   7. audit sweep       oftt-audit over both sweeps (races, lock order,
#                        stale reads, API lifecycle) + seeded-defect smoke;
#                        the 600-budget sweep also exports its observed
#                        lock sites and pool ops for the lint stage's
#                        cross-checks
#   8. lint sweep        oftt-lint over the whole workspace: zero
#                        non-baselined findings, no stale baseline
#                        entries, static lock graph must cover every
#                        dynamically observed lock site, the static pool
#                        sites must cover every dynamically observed pool
#                        op, the oftt-lint-v2 JSON must validate, and
#                        each rule family must still fire on its seeded
#                        fixture
#   9. lint dataflow     flow-sensitive acceptance: each dataflow family
#                        (pool typestate, epoch stamping, conn DFA) must
#                        fire its own rule on its seeded fixture, and the
#                        audit sweep must have observed pool ops for the
#                        static cross-check to be non-vacuous
#  10. lint effects      interprocedural acceptance: the seeded
#                        diag→probe deadlock (split across a call
#                        boundary) must be rediscovered by the
#                        call-derived lock-order analysis under
#                        --include-injected, and the bench-lint
#                        throughput artifact must emit and validate as
#                        oftt-bench-lint-v2
#  11. wire smoke        two real oftt-node processes over loopback TCP:
#                        SIGKILL the primary, assert promotion within the
#                        detection budget and restore-crc integrity
#  12. saturation smoke  reduced reactor load gate: one max-rate stream
#                        plus 128 concurrent streaming apps, asserting
#                        the ≥ 7.86 MB/s aggregate floor, a fixed reactor
#                        thread count, and zero protocol errors
#  13. bench smoke       one-sample BENCH_checkpoint.json emit + reduced
#                        BENCH_wire.json and BENCH_verify.json emits, all
#                        schema-validated (fails on schema drift)
#  14. campaign smoke    trimmed 20-seed scenario campaign (reboot loop +
#                        the seeded startup defect): every run goes
#                        through the oftt-check invariant engine; any
#                        violation, non-recovered seed, or missed
#                        expected violation exits nonzero via the
#                        campaign gate, and the emitted BENCH_campaign
#                        artifact must validate as oftt-bench-campaign-v1
#
# Exits non-zero on the first failing stage, naming it on stderr.

set -euo pipefail
cd "$(dirname "$0")"

CURRENT_STAGE="startup"
step() {
    CURRENT_STAGE="$*"
    printf '\n== %s ==\n' "$*"
}
trap 'printf "\nCI FAILED in stage: %s\n" "$CURRENT_STAGE" >&2' ERR

# Scoped clippy for crates that carry the inject_bugs feature: both
# feature sets must be warning-free, not just the default one.
clippy_both_feature_sets() {
    cargo clippy -p "$1" --all-targets -q -- -D warnings
    cargo clippy -p "$1" --all-targets --features inject_bugs -q -- -D warnings
}

TMPFILES=()
cleanup() { rm -rf "${TMPFILES[@]}"; }
trap cleanup EXIT

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

step "tier-1: release build + root tests"
cargo build --release -q
cargo test -q

step "workspace tests"
cargo test --workspace -q

step "oftt-check sweep (pair failover, 600-schedule budget)"
cargo run -p oftt-check --release -q -- --scenario pair-failover --budget 600

step "oftt-check sweep (partitioned startup, shipped config)"
cargo run -p oftt-check --release -q -- --scenario partitioned-startup --budget 100

step "oftt-verify clippy (deny warnings, both feature sets)"
clippy_both_feature_sets oftt-verify

step "verify sweep: exhaustive abstract check + 200-schedule refinement"
cargo build --release -q -p oftt-verify
VERIFY_TRACES=$(mktemp -d /tmp/oftt-traces.XXXXXX)
TMPFILES+=("$VERIFY_TRACES")
cargo run -p oftt-check --release -q -- --scenario pair-failover --budget 200 \
    --export-traces "$VERIFY_TRACES"
# The pinned state count is the exhausted default-budget space; a
# mismatch means the abstract model (or its bounds) changed — re-pin
# only after reviewing why.
./target/release/oftt-verify --liveness --expect-states 1939405 \
    --refine "$VERIFY_TRACES"

step "verify seeded-defect round trip (inject_bugs)"
cargo test -p oftt-verify --features inject_bugs -q

step "oftt-audit clippy (deny warnings, both feature sets)"
clippy_both_feature_sets oftt-audit

step "audit sweep (pair failover, 600-schedule budget, lock + pool export)"
DYNAMIC_LOCKS=$(mktemp /tmp/oftt-dynamic-locks.XXXXXX.txt)
TMPFILES+=("$DYNAMIC_LOCKS")
DYNAMIC_POOLS=$(mktemp /tmp/oftt-dynamic-pools.XXXXXX.txt)
TMPFILES+=("$DYNAMIC_POOLS")
cargo run -p oftt-audit --release -q -- scan --scenario pair-failover --budget 600 \
    --export-locks "$DYNAMIC_LOCKS" \
    --export-pool-ops "$DYNAMIC_POOLS"

step "audit sweep (partitioned startup, shipped config)"
cargo run -p oftt-audit --release -q -- scan --scenario partitioned-startup --budget 100

step "audit seeded-defect corpus (inject_bugs)"
cargo test -p oftt-audit --features inject_bugs -q

step "lint sweep: workspace static analysis + static/dynamic cross-checks"
LINT_JSON=$(mktemp /tmp/LINT.XXXXXX.json)
TMPFILES+=("$LINT_JSON")
cargo build --release -q -p oftt-lint
./target/release/oftt-lint --workspace \
    --baseline lint-baseline.txt \
    --dynamic-locks "$DYNAMIC_LOCKS" \
    --dynamic-pool-ops "$DYNAMIC_POOLS" \
    --json "$LINT_JSON"
cargo run -p bench --release -q --bin bench-validate "$LINT_JSON"

step "lint seeded-fixture smoke (each rule family fires on its defect)"
for fixture in crates/oftt-lint/fixtures/*.rs; do
    rc=0
    ./target/release/oftt-lint "$fixture" >/dev/null || rc=$?
    # Exit 2 is "findings reported"; anything else means the seeded
    # defect went undetected (0) or the run itself broke (1).
    if [ "$rc" -ne 2 ]; then
        printf 'fixture %s: expected exit 2 (findings), got %s\n' "$fixture" "$rc" >&2
        false
    fi
done
cargo test -p oftt-lint -q

step "lint-dataflow: flow-sensitive families fire + pool cross-check is live"
# Each dataflow family must fire *its own* rule on its fixture — the
# generic exit-2 loop above can't tell a typestate finding from a
# syntactic one, so this stage pins the rule name per seeded defect.
for pair in \
    use_after_recycle.rs:pool-typestate \
    double_recycle.rs:pool-typestate \
    leak_on_error_path.rs:pool-typestate \
    unstamped_epoch.rs:epoch-stamping \
    dfa_violation.rs:conn-dfa
do
    fixture="crates/oftt-lint/fixtures/${pair%%:*}"
    rule="${pair##*:}"
    out=$(./target/release/oftt-lint "$fixture" 2>&1) && rc=0 || rc=$?
    if [ "$rc" -ne 2 ] || ! printf '%s\n' "$out" | grep -q "\[$rule\]"; then
        printf 'fixture %s: expected [%s] finding (exit 2), got exit %s:\n%s\n' \
            "$fixture" "$rule" "$rc" "$out" >&2
        false
    fi
done
# The pool coverage cross-check above is only meaningful if the audit
# sweep actually observed pool traffic — an empty export would let the
# static inventory rot unnoticed.
if ! [ -s "$DYNAMIC_POOLS" ]; then
    printf 'audit sweep exported no dynamic pool ops; cross-check is vacuous\n' >&2
    false
fi

step "lint-effects: transitive deadlock rediscovery + bench artifact"
# The seeded diag→probe inversion spans a call boundary (the probe half
# lives in a helper the diag holder calls), so only the call-derived
# lock-order analysis can close the cycle — a per-function scan cannot.
INJECTED_OUT=$(mktemp /tmp/oftt-lint-injected.XXXXXX.txt)
TMPFILES+=("$INJECTED_OUT")
rc=0
./target/release/oftt-lint --workspace --include-injected \
    --baseline lint-baseline.txt >"$INJECTED_OUT" || rc=$?
if [ "$rc" -ne 2 ]; then
    printf 'injected scan: expected exit 2 (findings), got %s\n' "$rc" >&2
    false
fi
grep -q 'lock-order.*diag' "$INJECTED_OUT" || {
    printf 'injected scan did not rediscover the diag/probe deadlock\n' >&2
    false
}
BENCH_LINT_OUT=$(mktemp /tmp/BENCH_lint.XXXXXX.json)
TMPFILES+=("$BENCH_LINT_OUT")
BENCH_LINT_RUNS=1 BENCH_OUT="$BENCH_LINT_OUT" \
    cargo run -p bench --release -q --bin bench-lint
cargo run -p bench --release -q --bin bench-validate "$BENCH_LINT_OUT"

step "wire smoke: two-process SIGKILL failover over TCP"
cargo build --release -q -p oftt-wire --bins
./target/release/wire-smoke

step "saturation smoke: reactor throughput floor under load"
cargo run -p bench --release -q --bin bench-wire -- --saturation-smoke

step "bench smoke: checkpoint data-path artifact"
BENCH_SMOKE_OUT=$(mktemp /tmp/BENCH_checkpoint.XXXXXX.json)
TMPFILES+=("$BENCH_SMOKE_OUT")
BENCH_SAMPLES=1 BENCH_OUT="$BENCH_SMOKE_OUT" \
    cargo run -p bench --release -q --bin bench-checkpoint
cargo run -p bench --release -q --bin bench-validate "$BENCH_SMOKE_OUT"

step "bench smoke: wire runtime artifact (20 kills)"
BENCH_WIRE_OUT=$(mktemp /tmp/BENCH_wire.XXXXXX.json)
TMPFILES+=("$BENCH_WIRE_OUT")
BENCH_SAMPLES=500 BENCH_CKPT_SECS=2 BENCH_OUT="$BENCH_WIRE_OUT" \
    cargo run -p bench --release -q --bin bench-wire
cargo run -p bench --release -q --bin bench-validate "$BENCH_WIRE_OUT"

step "bench smoke: verification throughput artifact"
BENCH_VERIFY_OUT=$(mktemp /tmp/BENCH_verify.XXXXXX.json)
TMPFILES+=("$BENCH_VERIFY_OUT")
BENCH_REFINE_RUNS=5 BENCH_OUT="$BENCH_VERIFY_OUT" \
    cargo run -p bench --release -q --bin bench-verify
cargo run -p bench --release -q --bin bench-validate "$BENCH_VERIFY_OUT"

step "campaign smoke: 20-seed statistical sweep + artifact gate"
# The gate exits 2 on any invariant violation, non-recovered seed,
# breached pin, or an expected violation the instrument failed to
# surface — `set -e` turns any of those into a CI failure.
BENCH_CAMPAIGN_OUT=$(mktemp /tmp/BENCH_campaign.XXXXXX.json)
TMPFILES+=("$BENCH_CAMPAIGN_OUT")
cargo run -p oftt-campaign --release -q -- run \
    --scenario examples/campaigns/reboot_loop.json \
    --scenario examples/campaigns/startup_bug.json \
    --seeds 20 --out "$BENCH_CAMPAIGN_OUT"
cargo run -p bench --release -q --bin bench-validate "$BENCH_CAMPAIGN_OUT"

printf '\nCI green.\n'
