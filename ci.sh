#!/usr/bin/env bash
# CI gate for the OFTT reproduction.
#
# Stages:
#   1. formatting        cargo fmt --check (config in rustfmt.toml)
#   2. lints             cargo clippy, warnings are errors
#   3. tier-1            release build + the root suite's smoke tests
#   4. workspace tests   every crate's unit/integration tests
#   5. model checking    budgeted oftt-check sweep over pair failover
#   6. verify sweep      oftt-verify exhausts the abstract protocol space
#                        (pinned state count, zero violations, no lasso)
#                        and refines a 200-schedule trace-export sweep,
#                        plus the seeded-defect round-trip smoke
#   7. audit sweep       oftt-audit over both sweeps (races, lock order,
#                        stale reads, API lifecycle) + seeded-defect smoke
#   8. wire smoke        two real oftt-node processes over loopback TCP:
#                        SIGKILL the primary, assert promotion within the
#                        detection budget and restore-crc integrity
#   9. bench smoke       one-sample BENCH_checkpoint.json emit + reduced
#                        BENCH_wire.json and BENCH_verify.json emits, all
#                        schema-validated (fails on schema drift)
#
# Exits non-zero on the first failing stage.

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

step "tier-1: release build + root tests"
cargo build --release -q
cargo test -q

step "workspace tests"
cargo test --workspace -q

step "oftt-check sweep (pair failover, 600-schedule budget)"
cargo run -p oftt-check --release -q -- --scenario pair-failover --budget 600

step "oftt-check sweep (partitioned startup, shipped config)"
cargo run -p oftt-check --release -q -- --scenario partitioned-startup --budget 100

step "oftt-verify clippy (deny warnings, both feature sets)"
cargo clippy -p oftt-verify --all-targets -q -- -D warnings
cargo clippy -p oftt-verify --all-targets --features inject_bugs -q -- -D warnings

step "verify sweep: exhaustive abstract check + 200-schedule refinement"
cargo build --release -q -p oftt-verify
VERIFY_TRACES=$(mktemp -d /tmp/oftt-traces.XXXXXX)
cargo run -p oftt-check --release -q -- --scenario pair-failover --budget 200 \
    --export-traces "$VERIFY_TRACES"
# The pinned state count is the exhausted default-budget space; a
# mismatch means the abstract model (or its bounds) changed — re-pin
# only after reviewing why.
./target/release/oftt-verify --liveness --expect-states 1939405 \
    --refine "$VERIFY_TRACES"
rm -rf "$VERIFY_TRACES"

step "verify seeded-defect round trip (inject_bugs)"
cargo test -p oftt-verify --features inject_bugs -q

step "oftt-audit clippy (deny warnings, both feature sets)"
cargo clippy -p oftt-audit --all-targets -q -- -D warnings
cargo clippy -p oftt-audit --all-targets --features inject_bugs -q -- -D warnings

step "audit sweep (pair failover, 600-schedule budget)"
cargo run -p oftt-audit --release -q -- scan --scenario pair-failover --budget 600

step "audit sweep (partitioned startup, shipped config)"
cargo run -p oftt-audit --release -q -- scan --scenario partitioned-startup --budget 100

step "audit seeded-defect corpus (inject_bugs)"
cargo test -p oftt-audit --features inject_bugs -q

step "wire smoke: two-process SIGKILL failover over TCP"
cargo build --release -q -p oftt-wire --bins
./target/release/wire-smoke

step "bench smoke: checkpoint data-path artifact"
BENCH_SMOKE_OUT=$(mktemp /tmp/BENCH_checkpoint.XXXXXX.json)
BENCH_WIRE_OUT=$(mktemp /tmp/BENCH_wire.XXXXXX.json)
trap 'rm -f "$BENCH_SMOKE_OUT" "$BENCH_WIRE_OUT"' EXIT
BENCH_SAMPLES=1 BENCH_OUT="$BENCH_SMOKE_OUT" \
    cargo run -p bench --release -q --bin bench-checkpoint
cargo run -p bench --release -q --bin bench-validate "$BENCH_SMOKE_OUT"

step "bench smoke: wire runtime artifact (20 kills)"
BENCH_SAMPLES=500 BENCH_CKPT_SECS=2 BENCH_OUT="$BENCH_WIRE_OUT" \
    cargo run -p bench --release -q --bin bench-wire
cargo run -p bench --release -q --bin bench-validate "$BENCH_WIRE_OUT"

step "bench smoke: verification throughput artifact"
BENCH_VERIFY_OUT=$(mktemp /tmp/BENCH_verify.XXXXXX.json)
trap 'rm -f "$BENCH_SMOKE_OUT" "$BENCH_WIRE_OUT" "$BENCH_VERIFY_OUT"' EXIT
BENCH_REFINE_RUNS=5 BENCH_OUT="$BENCH_VERIFY_OUT" \
    cargo run -p bench --release -q --bin bench-verify
cargo run -p bench --release -q --bin bench-validate "$BENCH_VERIFY_OUT"

printf '\nCI green.\n'
