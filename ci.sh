#!/usr/bin/env bash
# CI gate for the OFTT reproduction.
#
# Stages:
#   1. formatting        cargo fmt --check (config in rustfmt.toml)
#   2. lints             cargo clippy, warnings are errors
#   3. tier-1            release build + the root suite's smoke tests
#   4. workspace tests   every crate's unit/integration tests
#   5. model checking    budgeted oftt-check sweep over pair failover
#   6. audit sweep       oftt-audit over both sweeps (races, lock order,
#                        stale reads, API lifecycle) + seeded-defect smoke
#   7. wire smoke        two real oftt-node processes over loopback TCP:
#                        SIGKILL the primary, assert promotion within the
#                        detection budget and restore-crc integrity
#   8. bench smoke       one-sample BENCH_checkpoint.json emit + a reduced
#                        BENCH_wire.json emit, both schema-validated
#                        (fails on schema drift)
#
# Exits non-zero on the first failing stage.

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

step "tier-1: release build + root tests"
cargo build --release -q
cargo test -q

step "workspace tests"
cargo test --workspace -q

step "oftt-check sweep (pair failover, 600-schedule budget)"
cargo run -p oftt-check --release -q -- --scenario pair-failover --budget 600

step "oftt-check sweep (partitioned startup, shipped config)"
cargo run -p oftt-check --release -q -- --scenario partitioned-startup --budget 100

step "oftt-audit clippy (deny warnings, both feature sets)"
cargo clippy -p oftt-audit --all-targets -q -- -D warnings
cargo clippy -p oftt-audit --all-targets --features inject_bugs -q -- -D warnings

step "audit sweep (pair failover, 600-schedule budget)"
cargo run -p oftt-audit --release -q -- scan --scenario pair-failover --budget 600

step "audit sweep (partitioned startup, shipped config)"
cargo run -p oftt-audit --release -q -- scan --scenario partitioned-startup --budget 100

step "audit seeded-defect corpus (inject_bugs)"
cargo test -p oftt-audit --features inject_bugs -q

step "wire smoke: two-process SIGKILL failover over TCP"
cargo build --release -q -p oftt-wire --bins
./target/release/wire-smoke

step "bench smoke: checkpoint data-path artifact"
BENCH_SMOKE_OUT=$(mktemp /tmp/BENCH_checkpoint.XXXXXX.json)
BENCH_WIRE_OUT=$(mktemp /tmp/BENCH_wire.XXXXXX.json)
trap 'rm -f "$BENCH_SMOKE_OUT" "$BENCH_WIRE_OUT"' EXIT
BENCH_SAMPLES=1 BENCH_OUT="$BENCH_SMOKE_OUT" \
    cargo run -p bench --release -q --bin bench-checkpoint
cargo run -p bench --release -q --bin bench-validate "$BENCH_SMOKE_OUT"

step "bench smoke: wire runtime artifact (20 kills)"
BENCH_SAMPLES=500 BENCH_CKPT_SECS=2 BENCH_OUT="$BENCH_WIRE_OUT" \
    cargo run -p bench --release -q --bin bench-wire
cargo run -p bench --release -q --bin bench-validate "$BENCH_WIRE_OUT"

printf '\nCI green.\n'
