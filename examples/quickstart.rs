//! Quickstart: make a tiny application fault tolerant with OFTT.
//!
//! Builds a two-node pair plus a client PC, wraps a counter application in
//! the OFTT toolkit, crashes the primary mid-run, and shows the backup
//! resuming from the latest checkpoint.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use ds_net::fault::{inject, Fault};
use ds_net::link::Link;
use ds_net::node::NodeConfig;
use ds_net::prelude::{ClusterSim, Envelope, Process, ProcessEnv, ProcessEnvExt};
use ds_sim::prelude::{SimDuration, SimTime};
use oftt::checkpoint::VarSet;
use oftt::prelude::*;
use parking_lot::Mutex;

/// Step 1 — write the application against `FtApplication`: domain logic
/// plus named-state serialization. This one counts messages.
struct Counter {
    count: u64,
    view: Arc<Mutex<u64>>,
}

impl FtApplication for Counter {
    fn snapshot(&self) -> VarSet {
        [("count".to_string(), comsim::marshal::to_shared(&self.count).unwrap())]
            .into_iter()
            .collect()
    }

    fn restore(&mut self, image: &VarSet) {
        if let Some(bytes) = image.get("count") {
            self.count = comsim::marshal::from_bytes(bytes).unwrap();
        }
    }

    fn on_activate(&mut self, ctx: &mut FtCtx<'_>) {
        println!(
            "[{}] counter ACTIVE on {} with count={}",
            ctx.now(),
            ctx.env().self_endpoint(),
            self.count
        );
    }

    fn on_app_message(&mut self, _envelope: Envelope, _ctx: &mut FtCtx<'_>) {
        self.count += 1;
        *self.view.lock() = self.count;
    }
}

/// A driver that pokes whichever node is primary, once per 100 ms.
struct Driver {
    pair: Pair,
    primary: Option<ds_net::NodeId>,
}

impl Process for Driver {
    fn on_start(&mut self, env: &mut dyn ProcessEnv) {
        env.set_timer(SimDuration::from_millis(100), 1);
    }
    fn on_timer(&mut self, _token: u64, env: &mut dyn ProcessEnv) {
        for node in [self.pair.a, self.pair.b] {
            env.send_msg(engine_endpoint(node), oftt::messages::ToEngine::QueryRole);
        }
        if let Some(primary) = self.primary {
            env.send_msg(ds_net::Endpoint::new(primary, "counter"), "tick".to_string());
        }
        env.set_timer(SimDuration::from_millis(100), 1);
    }
    fn on_message(&mut self, envelope: Envelope, _env: &mut dyn ProcessEnv) {
        if let Ok(report) = envelope.body.downcast::<RoleReport>() {
            if report.role == Role::Primary {
                self.primary = Some(report.node);
            }
        }
    }
}

fn main() {
    // Step 2 — build the cluster: a redundant pair and a client PC.
    let mut cs = ClusterSim::new(42);
    let a = cs.add_node(NodeConfig { name: "pair-1".into(), ..Default::default() });
    let b = cs.add_node(NodeConfig { name: "pair-2".into(), ..Default::default() });
    let pc = cs.add_node(NodeConfig { name: "client".into(), ..Default::default() });
    cs.connect(a, b, Link::dual());
    cs.connect(a, pc, Link::single());
    cs.connect(b, pc, Link::single());

    // Step 3 — deploy an OFTT engine and the wrapped app on both nodes.
    let config = OfttConfig::new(Pair::new(a, b));
    let view = Arc::new(Mutex::new(0u64));
    for node in [a, b] {
        let engine_config = config.clone();
        let probe = Arc::new(Mutex::new(EngineProbe::default()));
        cs.register_service(
            node,
            engine_service(),
            Box::new(move || Box::new(Engine::new(engine_config.clone(), probe.clone()))),
            true,
        );
        let app_config = config.clone();
        let v = view.clone();
        let ftim_probe = Arc::new(Mutex::new(FtimProbe::default()));
        cs.register_service(
            node,
            "counter",
            Box::new(move || {
                Box::new(FtProcess::new(
                    app_config.clone(),
                    RecoveryRule::default(),
                    Counter { count: 0, view: v.clone() },
                    ftim_probe.clone(),
                ))
            }),
            true,
        );
    }
    let pair = config.pair;
    cs.register_service(
        pc,
        "driver",
        Box::new(move || Box::new(Driver { pair, primary: None })),
        true,
    );

    // Step 4 — run, crash the primary, keep running.
    cs.trace_mut().set_echo(true);
    cs.start();
    cs.run_until(SimTime::from_secs(20));
    println!("\n>>> count before fault: {}", view.lock());
    println!(">>> crashing node0 (the likely primary) at t=20s\n");
    inject(&mut cs, SimTime::from_secs(20), Fault::CrashNode(a));
    cs.run_until(SimTime::from_secs(40));
    println!("\n>>> count after failover and 20 more seconds: {}", view.lock());
    println!(">>> the backup resumed from the last checkpoint and kept counting");
}
