//! The Figure-1a reference configuration end to end: a PLC controlling a
//! tank on the plant floor, an industrial-PC pair serving the data over
//! OPC (stateless server FTIMs), and a monitor/control-PC pair running the
//! OFTT-protected Tag Monitor (checkpointing client FTIM).
//!
//! Crashes first the OPC-server primary, then the monitor primary, and
//! shows the monitoring function riding through both.
//!
//! ```text
//! cargo run --example scada_pipeline
//! ```

use ds_net::fault::Fault;
use ds_sim::prelude::SimTime;
use oftt_harness::scenario_fig1::{Fig1Scenario, ReferenceConfig};

fn show(scenario: &Fig1Scenario, label: &str) {
    println!("────────────────────────────────────────────────");
    println!("t={}  {label}", scenario.cs.now());
    match scenario.active_tagmon() {
        Some((node, state)) => {
            println!("active Tag Monitor on {node}: {} samples", state.total_samples);
            for (item, stats) in &state.tags {
                println!(
                    "  {item:<28} last={:>7.2}  min={:>7.2}  max={:>7.2}  n={}",
                    stats.last, stats.min, stats.max, stats.samples
                );
            }
        }
        None => println!("(no active Tag Monitor)"),
    }
}

fn main() {
    let mut scenario = Fig1Scenario::build(ReferenceConfig::ControlWithRemoteMonitoring, 77);
    scenario.start();

    scenario.run_until(SimTime::from_secs(60));
    show(&scenario, "steady state: PLC -> OPC server pair -> Tag Monitor pair");

    // Strike the OPC-server primary: the Tag Monitor must rebind to the
    // surviving server node.
    let server_primary = scenario.server_primary().expect("server pair formed");
    println!(">>> crashing the OPC server primary: {server_primary}");
    scenario.inject(SimTime::from_secs(60), Fault::CrashNode(server_primary));
    scenario.run_until(SimTime::from_secs(120));
    show(&scenario, "after OPC-server failover (client rebound)");

    // Repair, then strike the monitor-pair primary: the backup Tag Monitor
    // resumes from its checkpointed statistics.
    scenario.inject(SimTime::from_secs(120), Fault::RepairNode(server_primary));
    scenario.run_until(SimTime::from_secs(150));
    let monitor_primary = scenario.client_primary().expect("monitor pair healthy");
    println!(">>> crashing the Tag Monitor primary: {monitor_primary}");
    scenario.inject(SimTime::from_secs(150), Fault::CrashNode(monitor_primary));
    scenario.run_until(SimTime::from_secs(210));
    show(&scenario, "after monitor failover (statistics restored from checkpoint)");

    println!("────────────────────────────────────────────────");
    println!(
        "the tank level statistics above survived both failovers; min/max\n\
         span the control deadband (40–60%), evidence that history from\n\
         before the faults was preserved."
    );
}
