//! Continuous environmental monitoring — the first of the other domains
//! the paper's conclusion names. An air-quality station feeds an
//! OFTT-protected annunciator application: threshold alarms follow the
//! ISA-18.1 acknowledge sequence, and — the point of the demo — an alarm
//! that the operator has NOT yet acknowledged survives a failover of the
//! monitoring PC. A lost unacknowledged alarm is the regulatory nightmare
//! this class of system exists to prevent.
//!
//! ```text
//! cargo run --example environmental_monitor
//! ```

use std::sync::Arc;

use ds_net::fault::{inject, Fault};
use ds_net::link::Link;
use ds_net::node::NodeConfig;
use ds_net::prelude::{ClusterSim, Endpoint, Envelope, ProcessEnvExt};
use ds_sim::prelude::{SimDuration, SimTime};
use oftt::checkpoint::VarSet;
use oftt::prelude::*;
use parking_lot::Mutex;
use plant::device::{AlarmWindow, Annunciator};
use plant::fieldbus::{PollRequest, PollResponse};
use plant::ladder::LadderProgram;
use plant::plc::{PlantPhysics, Plc};
use plant::value::IoImage;
use serde::{Deserialize, Serialize};

/// Synthetic air quality: SO₂ baseline with a plume event from t=90 s that
/// stays elevated past the failover at t=120 s.
struct AirQuality {
    t: f64,
}

impl PlantPhysics for AirQuality {
    fn advance(&mut self, dt: f64, image: &mut IoImage, rng: &mut ds_sim::prelude::SimRng) {
        self.t += dt;
        let so2 = if self.t >= 90.0 { 140.0 } else { 35.0 } + rng.uniform_f64(-5.0..5.0);
        let pm10 = 20.0 + 8.0 * (self.t * 0.01).sin() + rng.uniform_f64(-2.0..2.0);
        image.set("so2_ppb", so2);
        image.set("pm10", pm10);
    }
}

#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct StationState {
    panel: Annunciator,
    samples: u64,
    so2_max: f64,
}

struct StationApp {
    station: Endpoint,
    state: StationState,
    view: Arc<Mutex<(StationState, bool)>>,
    next_poll: u64,
}

const POLL_TICK: u64 = 1;

impl FtApplication for StationApp {
    fn snapshot(&self) -> VarSet {
        [("state".to_string(), comsim::marshal::to_shared(&self.state).unwrap())]
            .into_iter()
            .collect()
    }
    fn restore(&mut self, image: &VarSet) {
        if let Some(bytes) = image.get("state") {
            if let Ok(state) = comsim::marshal::from_bytes(bytes) {
                self.state = state;
            }
        }
        *self.view.lock() = (self.state.clone(), false);
    }
    fn on_activate(&mut self, ctx: &mut FtCtx<'_>) {
        *self.view.lock() = (self.state.clone(), true);
        ctx.env().set_timer(SimDuration::from_secs(1), POLL_TICK);
    }
    fn on_app_timer(&mut self, token: u64, ctx: &mut FtCtx<'_>) {
        if token == POLL_TICK {
            let me = ctx.env().self_endpoint();
            ctx.env().send_msg(
                self.station.clone(),
                PollRequest { reply_to: me, poll_id: self.next_poll },
            );
            self.next_poll += 1;
            ctx.env().set_timer(SimDuration::from_secs(1), POLL_TICK);
        }
    }
    fn on_app_message(&mut self, envelope: Envelope, ctx: &mut FtCtx<'_>) {
        if envelope.body.is::<PollResponse>() {
            let poll = envelope.body.downcast::<PollResponse>().expect("checked");
            let so2 = poll.tags.value("so2_ppb");
            self.state.samples += 1;
            self.state.so2_max = self.state.so2_max.max(so2);
            self.state.panel.set_condition("SO2 HIGH", so2 > 100.0);
            // An alarm transition is the event-based checkpoint moment.
            ctx.save_now();
            *self.view.lock() = (self.state.clone(), true);
        } else if let Some(cmd) = envelope.body.downcast_ref::<String>() {
            if let Some(window) = cmd.strip_prefix("ack:") {
                self.state.panel.acknowledge(window);
                ctx.save_now();
                *self.view.lock() = (self.state.clone(), true);
            }
        }
    }
}

fn main() {
    let mut cs = ClusterSim::new(7);
    let station = cs.add_node(NodeConfig { name: "air-station".into(), ..Default::default() });
    let m1 = cs.add_node(NodeConfig { name: "monitor-1".into(), ..Default::default() });
    let m2 = cs.add_node(NodeConfig { name: "monitor-2".into(), ..Default::default() });
    cs.connect(station, m1, Link::single());
    cs.connect(station, m2, Link::single());
    cs.connect(m1, m2, Link::dual());
    cs.register_service(
        station,
        "station",
        Box::new(|| {
            Box::new(Plc::new(
                SimDuration::from_millis(500),
                LadderProgram::empty(),
                Box::new(AirQuality { t: 0.0 }),
            ))
        }),
        true,
    );
    let config = OfttConfig::new(Pair::new(m1, m2));
    let view = Arc::new(Mutex::new((StationState::default(), false)));
    let station_ep = Endpoint::new(station, "station");
    for node in [m1, m2] {
        let engine_config = config.clone();
        let probe = Arc::new(Mutex::new(EngineProbe::default()));
        cs.register_service(
            node,
            engine_service(),
            Box::new(move || Box::new(Engine::new(engine_config.clone(), probe.clone()))),
            true,
        );
        let app_config = config.clone();
        let v = view.clone();
        let s = station_ep.clone();
        let ftim = Arc::new(Mutex::new(FtimProbe::default()));
        cs.register_service(
            node,
            "station-app",
            Box::new(move || {
                Box::new(FtProcess::new(
                    app_config.clone(),
                    RecoveryRule::default(),
                    StationApp {
                        station: s.clone(),
                        state: StationState::default(),
                        view: v.clone(),
                        next_poll: 0,
                    },
                    ftim.clone(),
                ))
            }),
            true,
        );
    }

    // The plume raises the alarm at ~t=90; the monitor blue-screens at
    // t=120 with the alarm still unacknowledged.
    inject(&mut cs, SimTime::from_secs(120), Fault::RebootNode(m1));
    cs.start();
    cs.run_until(SimTime::from_secs(119));
    let (state, _) = view.lock().clone();
    println!("t=119s  windows demanding attention: {:?}", state.panel.unacknowledged());
    assert_eq!(state.panel.window("SO2 HIGH"), AlarmWindow::Unacknowledged);

    cs.run_until(SimTime::from_secs(160));
    let (state, _) = view.lock().clone();
    println!(
        "t=160s  after failover: SO2 HIGH window = {:?}, so2_max = {:.0} ppb, samples = {}",
        state.panel.window("SO2 HIGH"),
        state.so2_max,
        state.samples
    );
    assert_eq!(
        state.panel.window("SO2 HIGH"),
        AlarmWindow::Unacknowledged,
        "the unacknowledged alarm must survive the failover"
    );

    // The operator acknowledges on the new primary.
    cs.post(SimTime::from_secs(161), Endpoint::new(m2, "station-app"), "ack:SO2 HIGH".to_string());
    cs.run_until(SimTime::from_secs(170));
    let (state, _) = view.lock().clone();
    println!("t=170s  after operator ack: SO2 HIGH window = {:?}", state.panel.window("SO2 HIGH"));
    println!("\nthe plume alarm raised before the crash was still flashing on the");
    println!("backup's panel — no unacknowledged alarm was lost to the failover.");
}
