//! The paper's §4 demonstration, end to end: the Call Track application on
//! a redundant pair, fed by the telephone system simulator through the
//! message diverter, surviving all four failure classes in sequence —
//! (a) node failure, (b) NT crash, (c) application failure, (d) OFTT
//! middleware failure — with the System Monitor display printed between
//! acts.
//!
//! ```text
//! cargo run --example call_track
//! ```

use ds_net::fault::Fault;
use ds_sim::prelude::{SimDuration, SimTime};
use oftt::config::engine_service;
use oftt_harness::scenario::{Fig3Scenario, ScenarioParams, APP_SERVICE};

fn show(scenario: &Fig3Scenario, label: &str) {
    let now = scenario.cs.now();
    println!("──────────────────────────────────────────────────────────");
    println!("t={now}  {label}");
    println!("{}", scenario.probes.monitor.lock().render(now));
    if let Some((node, state)) = scenario.active_state() {
        println!(
            "active copy on {node}: {} events ({} started / {} ended / {} blocked), {} lines busy",
            state.events,
            state.started,
            state.ended,
            state.blocked,
            state.busy_count()
        );
        println!("{}", state.render_histogram());
    } else {
        println!("(no active application copy right now)");
    }
}

fn main() {
    let params = ScenarioParams {
        seed: 2000,
        // A busy office so each act sees traffic.
        telephone: plant::telephone::TelephoneConfig {
            mean_interarrival: SimDuration::from_secs(8),
            mean_duration: SimDuration::from_secs(25),
            ..Default::default()
        },
        watchdog: Some(SimDuration::from_secs(60)),
        ..Default::default()
    };
    let mut scenario = Fig3Scenario::build(&params);
    scenario.start();

    // Act 0: steady state.
    scenario.run_until(SimTime::from_secs(60));
    show(&scenario, "steady state (no faults)");

    // Act 1 (paper a): node failure.
    let primary = scenario.primary_node().expect("pair formed");
    println!(">>> injecting NODE FAILURE on {primary}\n");
    scenario.inject(SimTime::from_secs(60), Fault::CrashNode(primary));
    scenario.run_until(SimTime::from_secs(120));
    show(&scenario, "after node failure + switchover");

    // Repair it so the pair is redundant again.
    scenario.inject(SimTime::from_secs(120), Fault::RepairNode(primary));
    scenario.run_until(SimTime::from_secs(180));

    // Act 2 (paper b): NT crash (blue screen) of the current primary.
    let primary = scenario.primary_node().expect("pair reformed");
    println!(">>> injecting NT CRASH (blue screen) on {primary}\n");
    scenario.inject(SimTime::from_secs(180), Fault::RebootNode(primary));
    scenario.run_until(SimTime::from_secs(260));
    show(&scenario, "after NT crash: reboot, rejoin as backup");

    // Act 3 (paper c): application software failure.
    let primary = scenario.primary_node().expect("pair healthy");
    println!(">>> killing the Call Track application on {primary}\n");
    scenario.inject(SimTime::from_secs(260), Fault::KillService(primary, APP_SERVICE.into()));
    scenario.run_until(SimTime::from_secs(320));
    show(&scenario, "after application failure: local restart with peer restore");

    // Act 4 (paper d): OFTT middleware failure.
    let primary = scenario.primary_node().expect("pair healthy");
    println!(">>> killing the OFTT engine on {primary}\n");
    scenario.inject(SimTime::from_secs(320), Fault::KillService(primary, engine_service()));
    scenario.run_until(SimTime::from_secs(400));
    show(&scenario, "after middleware failure: fail-safe, engine restart, re-pair");

    // Epilogue: accounting.
    scenario.stop_feed(SimTime::from_secs(400));
    scenario.run_until(SimTime::from_secs(430));
    let emitted = scenario.emitted();
    let processed = scenario.active_state().map(|(_, s)| s.events).unwrap_or(0);
    println!("──────────────────────────────────────────────────────────");
    println!("telephone events emitted:   {emitted}");
    println!("events in surviving state:  {processed}");
    println!(
        "lost across four failures:  {} ({:.1}%)",
        emitted as i64 - processed as i64,
        100.0 * (emitted as i64 - processed as i64).max(0) as f64 / emitted.max(1) as f64
    );
    println!("watchdog firings:           {}", scenario.probes.watchdog_fires.lock().len());
}
