//! Multiparameter patient monitoring — one of the other domains the
//! paper's conclusion names ("continuous environmental monitoring,
//! laboratory automation, and multiparameter patient monitoring").
//!
//! A bedside data concentrator (modeled as a PLC scanning vital-sign
//! "sensors") feeds an OFTT-protected alarm application: heart rate and
//! SpO₂ limits with a reliable watchdog that fires if the data feed stalls.
//! The primary monitor station blue-screens mid-run; the backup resumes
//! with the alarm history intact.
//!
//! ```text
//! cargo run --example patient_monitor
//! ```

use std::sync::Arc;

use ds_net::fault::{inject, Fault};
use ds_net::link::Link;
use ds_net::node::NodeConfig;
use ds_net::prelude::{ClusterSim, Endpoint, Envelope, ProcessEnvExt};
use ds_sim::prelude::{SimDuration, SimTime};
use oftt::checkpoint::VarSet;
use oftt::prelude::*;
use parking_lot::Mutex;
use plant::fieldbus::{PollRequest, PollResponse};
use plant::ladder::LadderProgram;
use plant::model::FirstOrderLag;
use plant::plc::{PlantPhysics, Plc};
use plant::value::IoImage;
use serde::{Deserialize, Serialize};

/// Synthetic vital signs: heart rate wanders around 72 bpm, SpO₂ around
/// 97%, with an injected desaturation episode between t=100 s and t=140 s.
struct Vitals {
    hr: FirstOrderLag,
    spo2: FirstOrderLag,
    t: f64,
}

impl PlantPhysics for Vitals {
    fn advance(&mut self, dt: f64, image: &mut IoImage, rng: &mut ds_sim::prelude::SimRng) {
        self.t += dt;
        let hr_target = 72.0 + 6.0 * (self.t * 0.05).sin() + rng.uniform_f64(-2.0..2.0);
        let spo2_target = if (100.0..140.0).contains(&self.t) {
            86.0 // desaturation episode
        } else {
            97.0 + rng.uniform_f64(-0.5..0.5)
        };
        image.set("hr", self.hr.step(dt, hr_target));
        image.set("spo2", self.spo2.step(dt, spo2_target));
    }
}

/// Checkpointed alarm-station state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct AlarmState {
    samples: u64,
    hr_min: f64,
    hr_max: f64,
    spo2_min: f64,
    alarms: Vec<(u64, String)>, // (sim-seconds, message)
}

/// The OFTT-protected bedside alarm application: polls the concentrator,
/// checks limits, records alarms.
struct AlarmStation {
    concentrator: Endpoint,
    state: AlarmState,
    view: Arc<Mutex<AlarmState>>,
    next_poll: u64,
}

const POLL_TICK: u64 = 1;

impl FtApplication for AlarmStation {
    fn snapshot(&self) -> VarSet {
        [("state".to_string(), comsim::marshal::to_shared(&self.state).unwrap())]
            .into_iter()
            .collect()
    }

    fn restore(&mut self, image: &VarSet) {
        if let Some(bytes) = image.get("state") {
            if let Ok(state) = comsim::marshal::from_bytes(bytes) {
                self.state = state;
            }
        }
    }

    fn on_activate(&mut self, ctx: &mut FtCtx<'_>) {
        // The deadman watchdog: if the feed stalls 10 s, raise an alarm.
        let _ = ctx.watchdog_create("feed-deadman", SimDuration::from_secs(10));
        let _ = ctx.watchdog_set("feed-deadman");
        ctx.env().set_timer(SimDuration::from_millis(500), POLL_TICK);
    }

    fn on_app_timer(&mut self, token: u64, ctx: &mut FtCtx<'_>) {
        if token == POLL_TICK {
            let me = ctx.env().self_endpoint();
            ctx.env().send_msg(
                self.concentrator.clone(),
                PollRequest { reply_to: me, poll_id: self.next_poll },
            );
            self.next_poll += 1;
            ctx.env().set_timer(SimDuration::from_millis(500), POLL_TICK);
        }
    }

    fn on_app_message(&mut self, envelope: Envelope, ctx: &mut FtCtx<'_>) {
        let Ok(poll) = envelope.body.downcast::<PollResponse>() else { return };
        let hr = poll.tags.value("hr");
        let spo2 = poll.tags.value("spo2");
        if self.state.samples == 0 {
            self.state.hr_min = hr;
            self.state.hr_max = hr;
            self.state.spo2_min = spo2;
        }
        self.state.samples += 1;
        self.state.hr_min = self.state.hr_min.min(hr);
        self.state.hr_max = self.state.hr_max.max(hr);
        self.state.spo2_min = self.state.spo2_min.min(spo2);
        let now_s = ctx.now().as_secs_f64() as u64;
        if spo2 < 90.0
            && self.state.alarms.last().map(|(t, _)| now_s.saturating_sub(*t) > 15).unwrap_or(true)
        {
            let msg = format!("SpO2 LOW: {spo2:.1}%");
            self.state.alarms.push((now_s, msg.clone()));
            ctx.env().record(ds_sim::prelude::TraceCategory::App, format!("ALARM: {msg}"));
            // An alarm is exactly the event-based checkpoint case: OFTTSave.
            ctx.save_now();
        }
        let _ = ctx.watchdog_reset("feed-deadman");
        *self.view.lock() = self.state.clone();
    }

    fn on_watchdog(&mut self, name: &str, ctx: &mut FtCtx<'_>) {
        let now_s = ctx.now().as_secs_f64() as u64;
        self.state.alarms.push((now_s, format!("WATCHDOG {name}: data feed stalled")));
        *self.view.lock() = self.state.clone();
        let _ = ctx.watchdog_set(name);
    }
}

fn main() {
    let mut cs = ClusterSim::new(99);
    let bed = cs.add_node(NodeConfig { name: "bedside-concentrator".into(), ..Default::default() });
    let m1 = cs.add_node(NodeConfig { name: "monitor-1".into(), ..Default::default() });
    let m2 = cs.add_node(NodeConfig { name: "monitor-2".into(), ..Default::default() });
    cs.connect(bed, m1, Link::single());
    cs.connect(bed, m2, Link::single());
    cs.connect(m1, m2, Link::dual());

    cs.register_service(
        bed,
        "concentrator",
        Box::new(|| {
            Box::new(Plc::new(
                SimDuration::from_millis(250),
                LadderProgram::empty(),
                Box::new(Vitals {
                    hr: FirstOrderLag::new(72.0, 3.0),
                    spo2: FirstOrderLag::new(97.0, 5.0),
                    t: 0.0,
                }),
            ))
        }),
        true,
    );

    let config = OfttConfig::new(Pair::new(m1, m2));
    let view = Arc::new(Mutex::new(AlarmState::default()));
    let concentrator = Endpoint::new(bed, "concentrator");
    for node in [m1, m2] {
        let engine_config = config.clone();
        let probe = Arc::new(Mutex::new(EngineProbe::default()));
        cs.register_service(
            node,
            engine_service(),
            Box::new(move || Box::new(Engine::new(engine_config.clone(), probe.clone()))),
            true,
        );
        let app_config = config.clone();
        let v = view.clone();
        let c = concentrator.clone();
        let ftim = Arc::new(Mutex::new(FtimProbe::default()));
        cs.register_service(
            node,
            "alarm-station",
            Box::new(move || {
                Box::new(FtProcess::new(
                    app_config.clone(),
                    RecoveryRule::default(),
                    AlarmStation {
                        concentrator: c.clone(),
                        state: AlarmState::default(),
                        view: v.clone(),
                        next_poll: 0,
                    },
                    ftim.clone(),
                ))
            }),
            true,
        );
    }

    // Blue-screen the likely primary right in the middle of the
    // desaturation episode.
    inject(&mut cs, SimTime::from_secs(115), Fault::RebootNode(m1));
    cs.start();
    cs.run_until(SimTime::from_secs(240));

    let state = view.lock().clone();
    println!("samples processed:      {}", state.samples);
    println!("heart rate range:       {:.1} – {:.1} bpm", state.hr_min, state.hr_max);
    println!("lowest SpO2 observed:   {:.1}%", state.spo2_min);
    println!("alarm history (survived the monitor blue screen at t=115 s):");
    for (t, msg) in &state.alarms {
        println!("  t={t:>4}s  {msg}");
    }
    assert!(
        state.alarms.iter().any(|(_, m)| m.contains("SpO2 LOW")),
        "the desaturation episode must be in the surviving history"
    );
    println!("\nthe desaturation alarm raised before the crash is still in the log —");
    println!("checkpointed state (including the armed watchdog) moved to the backup.");
}
